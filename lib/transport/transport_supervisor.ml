(* Transport supervision (DESIGN.md section 16): policy and per-session
   bookkeeping for turning real peer failures — a killed player process,
   a poisoned worker domain, a stream past its read deadline — into
   tolerated, attributed crash-stop faults instead of fatal
   [Backend_failure]s.

   The supervisor never decides message fates (that stays with the
   coordinator's [Net.Plan]); it only converts an observed physical
   failure into the mark a simulated crash at the same round would have
   carried, and routes the evidence: death and stalls manifest as
   silence and are attributed by the existing absence machinery exactly
   as simulated crashes are, while mangled frames — which the simulator
   cannot produce — are recorded directly as [Undecodable] evidence.

   Supervision is opt-in and ambient, mirroring [Net.with_plan]: it is
   active only inside [with_supervision], and requires an ambient fault
   plan to hold the crash marks (an empty plan suffices). Without it,
   backends fail loudly exactly as before. *)

type config = {
  deadline : float;  (* per-attempt receive deadline, seconds *)
  retries : int;  (* extra read attempts after the first *)
  backoff : float;  (* per-attempt deadline multiplier, >= 1 *)
  fault_bound : int option;
      (* t: strictly more than this many distinct real failures raises
         Safe_mode — the run can no longer promise a correct coin *)
}

exception Safe_mode of string
(** More distinct real peer failures than the configured fault bound
    [t]: the survivors can no longer reconstruct reliably, so the run
    refuses to continue rather than vend a possibly-wrong coin. The
    transport-level counterpart of [Pool]'s ledger-driven safe mode. *)

let default_deadline = 5.0
let default_retries = 2
let default_backoff = 2.0

let make ?(deadline = default_deadline) ?(retries = default_retries)
    ?(backoff = default_backoff) ?fault_bound () =
  if deadline <= 0.0 || deadline <> deadline then
    invalid_arg "Transport_supervisor.make: deadline must be positive";
  if retries < 0 then
    invalid_arg "Transport_supervisor.make: retries must be >= 0";
  if backoff < 1.0 then
    invalid_arg "Transport_supervisor.make: backoff must be >= 1";
  (match fault_bound with
  | Some t when t < 0 ->
      invalid_arg "Transport_supervisor.make: fault_bound must be >= 0"
  | _ -> ());
  { deadline; retries; backoff; fault_bound }

(* Total wall-clock budget before a silent peer is declared dead: the
   sum of the per-attempt deadlines. Backends whose read primitive has
   no per-attempt structure (domains barrier polling) wait this long. *)
let total_budget c =
  let rec go acc d k = if k < 0 then acc else go (acc +. d) (d *. c.backoff) (k - 1) in
  go 0.0 c.deadline c.retries

let ambient : config option ref = ref None

let with_supervision ?deadline ?retries ?backoff ?fault_bound f =
  let cfg = make ?deadline ?retries ?backoff ?fault_bound () in
  let previous = !ambient in
  ambient := Some cfg;
  Fun.protect ~finally:(fun () -> ambient := previous) f

let active () = !ambient

(* ------------------------ peer bookkeeping ----------------------- *)

(* One tracker per worker group (player count): which peers the session
   has declared dead, and why. Deadness is sticky — a declared-dead
   peer is skipped by every later post and barrier. *)

type tracker = {
  n : int;
  dead : Transport_error.peer_failure option array;
  mutable dead_count : int;
}

let tracker ~n = { n; dead = Array.make n None; dead_count = 0 }
let is_dead tr player = player >= 0 && player < tr.n && tr.dead.(player) <> None
let dead_count tr = tr.dead_count

let deaths tr =
  let acc = ref [] in
  for i = tr.n - 1 downto 0 do
    match tr.dead.(i) with
    | Some f -> acc := (i, f) :: !acc
    | None -> ()
  done;
  !acc

(* Declare a peer dead: crash-stop mark in the ambient plan (pinned to
   the round currently being formed, so the coordinator's voiding is
   byte-identical to a simulated crash there), a [Trace.Crash] event,
   [Undecodable] evidence when the stream carried mangled bytes, and
   the fault-bound check. Idempotent per peer. *)
let declare_dead cfg tr ~player (failure : Transport_error.peer_failure) =
  if not (is_dead tr player) then begin
    tr.dead.(player) <- Some failure;
    tr.dead_count <- tr.dead_count + 1;
    let round =
      match Net.current_plan () with
      | Some plan ->
          ignore (Net.Plan.mark_crashed plan ~player);
          Net.Plan.forming_round plan
      | None -> 0
    in
    Trace.event (fun () ->
        Trace.Crash { player; round; reason = failure.reason });
    if failure.undecodable then
      Sentinel.observe (fun () -> [ (player, Sentinel.Undecodable) ]);
    match cfg.fault_bound with
    | Some t when tr.dead_count > t ->
        raise
          (Safe_mode
             (Printf.sprintf
                "%d real peer failures exceed the fault bound t=%d (last: \
                 player %d %s)"
                tr.dead_count t player failure.reason))
    | _ -> ()
  end
