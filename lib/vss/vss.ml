module Make (F : Field_intf.S) = struct
  module P = Poly.Make (F)
  module S = Shamir.Make (F)
  module BW = Berlekamp_welch.Make (F)
  module Codec = Wire.Codec (F)

  (* Wire codec for the broadcast gammas, so corruption faults under a
     degraded-network plan operate on real encodings. *)
  let elt_codec = (Codec.encode_elt, Codec.decode_elt)

  type verdict = Accept | Reject

  type player_behavior = Honest | Silent | Broadcast of F.t

  let eval_all f n = Array.init n (fun i -> P.eval f (S.eval_point i))

  let honest_dealing g ~n ~t ~secret = S.deal g ~t ~n ~secret

  let cheating_dealing g ~n ~t ~degree =
    if degree <= t then invalid_arg "Vss.cheating_dealing: degree must exceed t";
    if degree >= n then invalid_arg "Vss.cheating_dealing: degree must be < n";
    let f =
      P.add (P.random g ~degree:t)
        (P.monomial (F.random_nonzero g) degree)
    in
    eval_all f n

  let targeted_cheating_dealing g ~n ~t ~guess =
    if F.equal guess F.zero then
      invalid_arg "Vss.targeted_cheating_dealing: guess must be non-zero";
    if t + 1 >= n then invalid_arg "Vss.targeted_cheating_dealing: t+1 >= n";
    (* f has a single offending coefficient a at degree t+1; g is rigged
       with -a/guess there, so that a + r * (-a/guess) vanishes exactly
       when r = guess (Lemma 1's proof, met with equality). *)
    let a = F.random_nonzero g in
    let f = P.add (P.random g ~degree:t) (P.monomial a (t + 1)) in
    let rig = F.neg (F.div a guess) in
    let gp = P.add (P.random g ~degree:t) (P.monomial rig (t + 1)) in
    (eval_all f n, eval_all gp n)

  (* The per-player broadcast value, shaped by its behaviour. *)
  let announced_gamma behavior honest_value i =
    match behavior i with
    | Honest -> Some (honest_value i)
    | Silent -> None
    | Broadcast v -> Some v

  (* Accounting convention (see DESIGN.md): ambient counters are global
     totals, so work that every player performs locally is executed once
     per player; the harness divides by n to report per-player costs.
     Each player computes its own verdict, which is identical across
     honest players because all inputs are broadcast values. *)

  (* Fig. 2 / Fig. 3 step 4: interpolate through *all* broadcast values;
     a missing value means the degree check cannot pass. The degree
     check runs on the session plan's precomputed extension rows —
     equivalent to interpolating and testing the degree, without the
     per-call Lagrange setup. *)
  let strict_verdict_one ~n ~t announced =
    let rec gather i values =
      if i >= n then Some values
      else
        match announced.(i) with
        | None -> None
        | Some v ->
            values.(i) <- v;
            gather (i + 1) values
    in
    match gather 0 (Array.make n F.zero) with
    | None -> Reject
    | Some values ->
        if S.G.fits (S.grid ~n ~t) values then Accept else Reject

  let per_player_verdict ?dealer ~n verdict_one =
    Trace.span Trace.Phase "vss.verdict" @@ fun () ->
    let verdicts =
      Array.init n (fun i ->
          let v = verdict_one () in
          Trace.event (fun () ->
              Trace.Verdict { player = i; accept = v = Accept });
          v)
    in
    (* Verdicts are computed from broadcast values, so every player —
       all n of them, far beyond the t + 1 concurrence floor — reaches
       the same one: a Reject is unanimously attributable to the named
       dealer. *)
    (match (dealer, verdicts.(0)) with
    | Some d, Reject ->
        Sentinel.observe (fun () -> [ (d, Sentinel.Rejected_dealing) ])
    | _ -> ());
    verdicts.(0)

  let strict_verdict ?dealer ~n ~t announced =
    per_player_verdict ?dealer ~n (fun () -> strict_verdict_one ~n ~t announced)

  (* Section-4 acceptance: a degree-<= t polynomial supported by at least
     n - t of the announced values. *)
  let robust_verdict_one ~n ~t announced =
    let points =
      List.filter_map
        (fun i ->
          Option.map (fun v -> (S.eval_point i, v)) announced.(i))
        (List.init n Fun.id)
    in
    let m = List.length points in
    if m < n - t then Reject
    else
      let e = (m - t - 1) / 2 in
      match BW.decode_with_support ~max_degree:t ~max_errors:e points with
      | Some (_, support) when List.length support >= n - t -> Accept
      | Some _ | None -> Reject

  let robust_verdict ?dealer ~n ~t announced =
    per_player_verdict ?dealer ~n (fun () -> robust_verdict_one ~n ~t announced)

  let check_sizes name ~n arrays =
    List.iter
      (fun a ->
        if Array.length a <> n then
          invalid_arg (name ^ ": share vector has wrong length"))
      arrays

  let gamma_single ~alpha ~beta ~r i = F.add alpha.(i) (F.mul r beta.(i))

  let deal_round ~n =
    Trace.span Trace.Phase "vss.deal" @@ fun () ->
    Trace.span Trace.Round "deal.round" @@ fun () ->
    (* The dealer hands one field element to each player over the private
       channels: n messages of one element, one round. *)
    for dst = 1 to n do
      Metrics.tick_message ~bytes_len:F.byte_size;
      Trace.event (fun () ->
          Trace.Send { src = 0; dst = dst - 1; bytes = F.byte_size })
    done;
    Metrics.tick_round ()

  let gamma_round ~n announce =
    Trace.span Trace.Phase "vss.gamma" @@ fun () ->
    Broadcast.round ~codec:elt_codec ~byte_size:(fun _ -> F.byte_size) ~n
      announce

  let run ?dealer ?(player_behavior = fun _ -> Honest) ~n ~t ~alpha ~beta ~r () =
    if n < (3 * t) + 1 then invalid_arg "Vss.run: requires n >= 3t+1";
    check_sizes "Vss.run" ~n [ alpha; beta ];
    Trace.span Trace.Protocol "vss" @@ fun () ->
    deal_round ~n;
    let announced =
      gamma_round ~n
        (announced_gamma player_behavior (gamma_single ~alpha ~beta ~r))
    in
    strict_verdict ?dealer ~n ~t announced

  let run_robust ?dealer ?(player_behavior = fun _ -> Honest) ~n ~t ~alpha ~beta ~r () =
    if n < (3 * t) + 1 then invalid_arg "Vss.run_robust: requires n >= 3t+1";
    check_sizes "Vss.run_robust" ~n [ alpha; beta ];
    Trace.span Trace.Protocol "vss.robust" @@ fun () ->
    deal_round ~n;
    let announced =
      gamma_round ~n
        (announced_gamma player_behavior (gamma_single ~alpha ~beta ~r))
    in
    robust_verdict ?dealer ~n ~t announced

  let combine ~r shares =
    (* Fig. 3 step 2: (...((r a_M + a_{M-1}) r + a_{M-2})...) r + a_1) r
       — exactly M multiplications and M - 1 additions. *)
    let m = Array.length shares in
    if m = 0 then F.zero
    else begin
      let acc = ref shares.(m - 1) in
      for j = m - 2 downto 0 do
        acc := F.add (F.mul !acc r) shares.(j)
      done;
      F.mul !acc r
    end

  let combine_naive ~r shares =
    let acc = ref F.zero in
    Array.iteri
      (fun j a -> acc := F.add !acc (F.mul (F.pow r (j + 1)) a))
      shares;
    !acc

  let batch_honest_dealing g ~n ~t ~secrets =
    (* One plan for all M sharings of the batch; the batch kernel keeps
       draws, shares and ticks identical to the sequential loop. *)
    let plan = S.grid ~n ~t in
    let per_secret = S.deal_batch_with plan g ~secrets in
    Array.init n (fun i -> Array.map (fun shares -> shares.(i)) per_secret)

  let batch_cheating_dealing g ~n ~t ~m ~bad =
    List.iter
      (fun j ->
        if j < 0 || j >= m then
          invalid_arg "Vss.batch_cheating_dealing: bad index out of range")
      bad;
    let per_secret =
      Array.init m (fun j ->
          if List.mem j bad then cheating_dealing g ~n ~t ~degree:(t + 1)
          else S.deal g ~t ~n ~secret:(F.random g))
    in
    Array.init n (fun i -> Array.map (fun shares -> shares.(i)) per_secret)

  let batch_targeted_cheating_dealing g ~n ~t ~roots =
    let m = Array.length roots in
    if m = 0 then invalid_arg "Vss.batch_targeted_cheating_dealing: no roots";
    Array.iter
      (fun r ->
        if F.equal r F.zero then
          invalid_arg "Vss.batch_targeted_cheating_dealing: zero root")
      roots;
    if
      Array.length (Array.of_list (List.sort_uniq F.compare (Array.to_list roots)))
      <> m
    then invalid_arg "Vss.batch_targeted_cheating_dealing: duplicate roots";
    (* H(r) = r * prod_{i=0}^{m-2} (r - roots_i): degree m, no constant
       term (the Horner combination only produces powers r^1..r^m), and
       root set {0, roots_0, ..., roots_{m-2}} — exactly m distinct
       values, meeting Lemma 3's m/p bound with equality. *)
    let h =
      Array.fold_left
        (fun acc root -> P.mul acc (P.of_coeffs [| F.neg root; F.one |]))
        (P.of_coeffs [| F.zero; F.one |])
        (Array.sub roots 0 (m - 1))
    in
    assert (P.degree h = m);
    assert (F.equal (P.coeff h 0) F.zero);
    (* Sharing j (1-based power j+1... Horner gives gamma = sum_j r^(j+1)
       alpha_{i,j} for j = 0..m-1). Give sharing j the offending
       x^(t+1)-coefficient coeff_{j+1}(H), so the combined polynomial's
       x^(t+1) coefficient is H(r). *)
    let per_secret =
      Array.init m (fun j ->
          let base = S.share_poly g ~t ~secret:(F.random g) in
          let f = P.add base (P.monomial (P.coeff h (j + 1)) (t + 1)) in
          eval_all f n)
    in
    Array.init n (fun i -> Array.map (fun shares -> shares.(i)) per_secret)

  let gamma_batch ~shares ~r i = combine ~r shares.(i)

  let run_batch ?dealer ?(player_behavior = fun _ -> Honest) ~n ~t ~shares ~r () =
    if n < (3 * t) + 1 then invalid_arg "Vss.run_batch: requires n >= 3t+1";
    if Array.length shares <> n then
      invalid_arg "Vss.run_batch: shares must be indexed by player";
    Trace.span Trace.Protocol "batch-vss" @@ fun () ->
    let announced =
      gamma_round ~n
        (announced_gamma player_behavior (gamma_batch ~shares ~r))
    in
    strict_verdict ?dealer ~n ~t announced

  let run_batch_on ?dealer ?(player_behavior = fun _ -> Honest) ~n ~t ~players
      ~shares ~r () =
    if n < (3 * t) + 1 then invalid_arg "Vss.run_batch_on: requires n >= 3t+1";
    if Array.length shares <> n then
      invalid_arg "Vss.run_batch_on: shares must be indexed by player";
    if List.length (List.sort_uniq compare players) <> List.length players then
      invalid_arg "Vss.run_batch_on: duplicate player ids";
    List.iter
      (fun i ->
        if i < 0 || i >= n then invalid_arg "Vss.run_batch_on: id out of range")
      players;
    if List.length players < t + 1 then
      invalid_arg "Vss.run_batch_on: need at least t+1 players";
    Trace.span Trace.Protocol "batch-vss.subset" @@ fun () ->
    let announced =
      gamma_round ~n
        (announced_gamma player_behavior (gamma_batch ~shares ~r))
    in
    let verdict_one () =
      let rec gather ids acc =
        match ids with
        | [] -> Some (List.rev acc)
        | i :: rest -> (
            match announced.(i) with
            | None -> None
            | Some v -> gather rest ((i, v) :: acc))
      in
      match gather players [] with
      | None -> Reject
      | Some points ->
          (* The subset's extension rows are cached in the plan, so the
             n per-player verdicts set them up once. *)
          if S.G.fits_on (S.grid ~n ~t) points then Accept else Reject
    in
    per_player_verdict ?dealer ~n verdict_one

  let run_batch_robust ?dealer ?(player_behavior = fun _ -> Honest) ~n ~t ~shares
      ~r () =
    if n < (3 * t) + 1 then invalid_arg "Vss.run_batch_robust: requires n >= 3t+1";
    if Array.length shares <> n then
      invalid_arg "Vss.run_batch_robust: shares must be indexed by player";
    Trace.span Trace.Protocol "batch-vss.robust" @@ fun () ->
    let announced =
      gamma_round ~n
        (announced_gamma player_behavior (gamma_batch ~shares ~r))
    in
    robust_verdict ?dealer ~n ~t announced
end
