(** The paper's verifiable-secret-sharing protocols (Section 3).

    Both protocols run in the broadcast model ([n >= 3t + 1], an ideal
    broadcast channel, and access to a secret random k-ary coin that can
    be exposed after the dealer commits its shares):

    {ul
    {- {b Protocol VSS} (Fig. 2) checks a single sharing: the dealer
       deals a masking polynomial [g]; the coin [r] is exposed; every
       player broadcasts [gamma_i = alpha_i + r * beta_i]; everyone
       interpolates one polynomial through the [gamma]s and accepts iff
       its degree is [<= t]. A cheating dealer passes with probability
       [<= 1/p] (Lemma 1) at the cost of one extra interpolation
       (Lemma 2).}
    {- {b Protocol Batch-VSS} (Fig. 3) checks [M] sharings at once:
       [r] is exposed, every player broadcasts the Horner combination
       [gamma_i = r^M alpha_iM + ... + r alpha_i1], and a single
       interpolation decides all [M] sharings together. Soundness error
       [<= M/p] (Lemma 3); amortized cost per secret [2k log k]
       additions and [O(1)] messages (Corollary 1).}}

    Dealings are represented as raw share vectors so that arbitrarily
    malformed dealers (shares on no polynomial at all) are expressible;
    helpers construct the honest dealing and the {e optimal} cheating
    dealings whose acceptance probabilities meet the lemma bounds with
    equality. *)

module Make (F : Field_intf.S) : sig
  module P : module type of Poly.Make (F)
  module S : module type of Shamir.Make (F)

  type verdict = Accept | Reject

  type player_behavior =
    | Honest
    | Silent  (** Broadcasts nothing; its point is skipped. *)
    | Broadcast of F.t  (** Broadcasts this instead of the true gamma. *)

  (** {1 Dealings} *)

  val honest_dealing : Prng.t -> n:int -> t:int -> secret:F.t -> F.t array
  (** Shares of a proper degree-[<= t] sharing. *)

  val cheating_dealing :
    Prng.t -> n:int -> t:int -> degree:int -> F.t array
  (** Shares of a polynomial of exact degree [degree] (> t for a cheat):
      the generic bad dealer. *)

  val targeted_cheating_dealing :
    Prng.t -> n:int -> t:int -> guess:F.t -> F.t array * F.t array
  (** Lemma 1's optimal attack: returns [(alpha, beta)] where [alpha]
      sits on a degree-[t+1] polynomial and [beta] is rigged so that the
      combined check polynomial has degree [<= t] {e exactly when} the
      exposed coin equals [guess] — acceptance probability exactly
      [1/p]. Requires [guess <> 0]. *)

  (** {1 Protocol VSS (Fig. 2)} *)

  val run :
    ?dealer:int ->
    ?player_behavior:(int -> player_behavior) ->
    n:int ->
    t:int ->
    alpha:F.t array ->
    beta:F.t array ->
    r:F.t ->
    unit ->
    verdict
  (** One execution given the dealer's two share vectors and the exposed
      coin. When [?dealer] names the dealing player, a [Reject] verdict
      feeds [Rejected_dealing] evidence to the ambient sentinel ledger
      (all [n] players concur — the verdict is a function of broadcast
      values). All run variants below take the same optional id. Fig. 2 faithfully: the verdict interpolates through {e all}
      broadcast values, so even one silent/lying player forces [Reject]
      — the paper's remark that without complaint rounds "it would be
      impossible to grant that all the n players' shares will satisfy
      the polynomial". Use {!run_robust} for the [n - t] variant. *)

  val run_robust :
    ?dealer:int ->
    ?player_behavior:(int -> player_behavior) ->
    n:int ->
    t:int ->
    alpha:F.t array ->
    beta:F.t array ->
    r:F.t ->
    unit ->
    verdict
  (** Accepts iff a degree-[<= t] polynomial agrees with at least
      [n - t] broadcast values (Berlekamp–Welch) — the fault-tolerant
      acceptance rule Bit-Gen uses (Section 4). *)

  (** {1 Protocol Batch-VSS (Fig. 3)} *)

  val combine : r:F.t -> F.t array -> F.t
  (** [combine ~r [|a1; ...; aM|]] is [r^M aM + ... + r a1], computed by
      the Horner chain of Fig. 3 step 2 ([M] multiplications). *)

  val combine_naive : r:F.t -> F.t array -> F.t
  (** The same value computed the obvious way — an independent power
      [r^j] per term (~2M multiplications). Exists as the ablation
      baseline for the paper's "this can be efficiently computed"
      remark; never used by the protocols. *)

  val batch_honest_dealing :
    Prng.t -> n:int -> t:int -> secrets:F.t array -> F.t array array
  (** [m] proper sharings; result indexed [player, secret]. *)

  val batch_cheating_dealing :
    Prng.t -> n:int -> t:int -> m:int -> bad:int list -> F.t array array
  (** Proper sharings except the [bad] indices get degree-[t+1]
      polynomials — the generic batch cheat. *)

  val batch_targeted_cheating_dealing :
    Prng.t -> n:int -> t:int -> roots:F.t array -> F.t array array
  (** Lemma 3's optimal attack with [m = length roots] sharings: the
      combined check polynomial's offending coefficient is [H(r)] for a
      degree-[m] polynomial [H] with no constant term, whose root set is
      [{0} ∪ {roots_0 .. roots_(m-2)}] — [m] distinct values, so the
      batch check accepts iff the coin lands in that set: acceptance
      probability exactly [m/p]. The [roots] must be distinct and
      non-zero. *)

  val run_batch :
    ?dealer:int ->
    ?player_behavior:(int -> player_behavior) ->
    n:int ->
    t:int ->
    shares:F.t array array ->
    r:F.t ->
    unit ->
    verdict
  (** Fig. 3: one broadcast of the combined share per player, one
      interpolation for all [M] secrets. *)

  val run_batch_robust :
    ?dealer:int ->
    ?player_behavior:(int -> player_behavior) ->
    n:int ->
    t:int ->
    shares:F.t array array ->
    r:F.t ->
    unit ->
    verdict
  (** Batch check with the [n - t] Berlekamp–Welch acceptance rule. *)

  val run_batch_on :
    ?dealer:int ->
    ?player_behavior:(int -> player_behavior) ->
    n:int ->
    t:int ->
    players:int list ->
    shares:F.t array array ->
    r:F.t ->
    unit ->
    verdict
  (** The paper's [Batch-VSS(l)] variant ("The protocol of Figure 3 can
      be easily modified to 'accept' if there is a polynomial F(x) of
      degree at most t, which for some given l, satisfies that for
      values i_1, ..., i_l we have F(i_j) = gamma_{i_j}"): everyone
      still broadcasts, but the degree check runs only through the
      [players] subset's values. Accepts iff all of them announced and
      a degree-[<= t] polynomial fits them. Requires [players] to be
      distinct valid ids with [length players >= t + 1]. *)
end
