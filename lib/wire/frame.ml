type kind = Msg | Round | End_of_round | Stop
type header = { kind : kind; src : int; dst : int; uid : int; length : int }

type error =
  | Truncated of { expected : int; got : int }
  | Bad_magic of int
  | Bad_version of int
  | Bad_kind of int
  | Oversized of { length : int; limit : int }
  | Trailing_bytes of int

exception Error of error

let pp_error ppf = function
  | Truncated { expected; got } ->
      Format.fprintf ppf "truncated frame: need %d bytes, have %d" expected got
  | Bad_magic m -> Format.fprintf ppf "bad frame magic 0x%04X" m
  | Bad_version v -> Format.fprintf ppf "unsupported frame version %d" v
  | Bad_kind k -> Format.fprintf ppf "unknown frame kind %d" k
  | Oversized { length; limit } ->
      Format.fprintf ppf "oversized frame payload: %d bytes (limit %d)" length
        limit
  | Trailing_bytes n -> Format.fprintf ppf "%d trailing bytes after frame" n

let magic = 0xD9C7
let version = 1
let header_size = 16
let max_payload = 16 * 1024 * 1024

let kind_to_int = function Msg -> 0 | Round -> 1 | End_of_round -> 2 | Stop -> 3

let kind_of_int = function
  | 0 -> Msg
  | 1 -> Round
  | 2 -> End_of_round
  | 3 -> Stop
  | k -> raise (Error (Bad_kind k))

let kind_name = function
  | Msg -> "msg"
  | Round -> "round"
  | End_of_round -> "end-of-round"
  | Stop -> "stop"

let check_u16 label v =
  if v < 0 || v > 0xFFFF then
    invalid_arg (Printf.sprintf "Frame.encode: %s %d out of u16 range" label v)

let encode kind ~src ~dst ~uid ~payload =
  check_u16 "src" src;
  check_u16 "dst" dst;
  if uid < 0 || uid > 0xFFFFFFFF then
    invalid_arg (Printf.sprintf "Frame.encode: uid %d out of u32 range" uid);
  let length = Bytes.length payload in
  if length > max_payload then
    invalid_arg
      (Printf.sprintf "Frame.encode: payload %d exceeds limit %d" length
         max_payload);
  let b = Bytes.create (header_size + length) in
  Bytes.set_uint16_le b 0 magic;
  Bytes.set_uint8 b 2 version;
  Bytes.set_uint8 b 3 (kind_to_int kind);
  Bytes.set_uint16_le b 4 src;
  Bytes.set_uint16_le b 6 dst;
  Bytes.set_uint16_le b 8 (uid land 0xFFFF);
  Bytes.set_uint16_le b 10 (uid lsr 16);
  Bytes.set_uint16_le b 12 (length land 0xFFFF);
  Bytes.set_uint16_le b 14 (length lsr 16);
  Bytes.blit payload 0 b header_size length;
  b

let u32_le b pos =
  Bytes.get_uint16_le b pos lor (Bytes.get_uint16_le b (pos + 2) lsl 16)

let decode_header b ~pos =
  let got = Bytes.length b - pos in
  if pos < 0 || got < header_size then
    raise (Error (Truncated { expected = header_size; got = max got 0 }));
  let m = Bytes.get_uint16_le b pos in
  if m <> magic then raise (Error (Bad_magic m));
  let v = Bytes.get_uint8 b (pos + 2) in
  if v <> version then raise (Error (Bad_version v));
  let kind = kind_of_int (Bytes.get_uint8 b (pos + 3)) in
  let src = Bytes.get_uint16_le b (pos + 4) in
  let dst = Bytes.get_uint16_le b (pos + 6) in
  let uid = u32_le b (pos + 8) in
  let length = u32_le b (pos + 12) in
  if length > max_payload then
    raise (Error (Oversized { length; limit = max_payload }));
  { kind; src; dst; uid; length }

let decode b =
  let hdr = decode_header b ~pos:0 in
  let total = header_size + hdr.length in
  let got = Bytes.length b in
  if got < total then raise (Error (Truncated { expected = total; got }));
  if got > total then raise (Error (Trailing_bytes (got - total)));
  (hdr, Bytes.sub b header_size hdr.length)
