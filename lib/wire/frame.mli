(** Length-prefixed, versioned transport frames.

    This is the unit of data movement for the byte-level transport
    backends (OCaml 5 domains, local sockets): every protocol message, as
    well as the control traffic of the round barrier, travels as one
    frame. The layout is fixed-header + payload, little-endian like the
    rest of {!Wire}:

    {v
    offset  size  field
    0       2     magic   (0xD9C7)
    2       1     version (1)
    3       1     kind    (0 Msg | 1 Round | 2 End_of_round | 3 Stop)
    4       2     src     player id of the sender
    6       2     dst     player id of the addressee
    8       4     uid     per-network message id (carrier bookkeeping)
    12      4     length  payload byte count
    16      len   payload
    v}

    Decoding is total in the sense required of anything that reads from
    a peer: malformed input raises the typed {!Error} — never a bare
    [Invalid_argument], never an out-of-bounds access, and the [length]
    field is bounds-checked against {!max_payload} {e before} any
    allocation, so a hostile or truncated stream cannot crash or balloon
    a reader. *)

type kind =
  | Msg  (** one protocol message in flight *)
  | Round  (** coordinator -> player: hand over your round's inbox *)
  | End_of_round  (** player -> coordinator: inbox hand-off complete *)
  | Stop  (** coordinator -> player: shut down cleanly *)

type header = { kind : kind; src : int; dst : int; uid : int; length : int }

type error =
  | Truncated of { expected : int; got : int }
      (** fewer bytes than the header or the announced payload needs *)
  | Bad_magic of int  (** first two bytes are not {!magic} *)
  | Bad_version of int  (** version byte differs from {!version} *)
  | Bad_kind of int  (** kind byte outside the defined range *)
  | Oversized of { length : int; limit : int }
      (** announced payload length exceeds {!max_payload} *)
  | Trailing_bytes of int  (** bytes left over after one whole frame *)

exception Error of error

val pp_error : Format.formatter -> error -> unit

val magic : int
val version : int

val header_size : int
(** Fixed byte size of the frame header (16). *)

val max_payload : int
(** Upper bound on the payload [length] field (16 MiB) — far above any
    protocol message, low enough that a garbage length can never force a
    giant allocation. *)

val kind_to_int : kind -> int
val kind_name : kind -> string

val encode : kind -> src:int -> dst:int -> uid:int -> payload:bytes -> bytes
(** One whole frame as a byte string.

    @raise Invalid_argument if [src], [dst] or [uid] overflow their
    fields or the payload exceeds {!max_payload}. *)

val decode_header : bytes -> pos:int -> header
(** Parse the 16-byte header at [pos].

    @raise Error on truncation or any malformed field. *)

val decode : bytes -> header * bytes
(** Parse exactly one whole frame: header plus payload, nothing left
    over.

    @raise Error on truncation, malformed fields, or trailing bytes. *)
