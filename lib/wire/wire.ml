module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 64

  let u8 t v =
    if v < 0 || v > 0xFF then invalid_arg "Wire.Writer.u8: out of range";
    Buffer.add_uint8 t v

  let u16 t v =
    if v < 0 || v > 0xFFFF then invalid_arg "Wire.Writer.u16: out of range";
    Buffer.add_uint16_le t v

  let u32 t v =
    if v < 0 || v > 0xFFFFFFFF then invalid_arg "Wire.Writer.u32: out of range";
    Buffer.add_uint16_le t (v land 0xFFFF);
    Buffer.add_uint16_le t (v lsr 16)

  let raw t b = Buffer.add_bytes t b
  let contents t = Buffer.to_bytes t
  let size t = Buffer.length t
end

module Reader = struct
  type t = { data : bytes; mutable pos : int }

  let of_bytes data = { data; pos = 0 }

  let need t n =
    if t.pos + n > Bytes.length t.data then
      invalid_arg "Wire.Reader: truncated input"

  let u8 t =
    need t 1;
    let v = Bytes.get_uint8 t.data t.pos in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    need t 2;
    let v = Bytes.get_uint16_le t.data t.pos in
    t.pos <- t.pos + 2;
    v

  let u32 t =
    let low = u16 t in
    let high = u16 t in
    (high lsl 16) lor low

  let raw t n =
    need t n;
    let b = Bytes.sub t.data t.pos n in
    t.pos <- t.pos + n;
    b

  let is_exhausted t = t.pos = Bytes.length t.data

  let expect_end t =
    if not (is_exhausted t) then invalid_arg "Wire.Reader: trailing bytes"
end

module Crc32 = struct
  (* CRC-32 (IEEE 802.3), reflected, table-driven. *)
  let table =
    lazy
      (Array.init 256 (fun i ->
           let c = ref i in
           for _ = 1 to 8 do
             c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c))

  let digest b =
    let table = Lazy.force table in
    let crc = ref 0xFFFFFFFF in
    for i = 0 to Bytes.length b - 1 do
      crc := table.((!crc lxor Bytes.get_uint8 b i) land 0xFF) lxor (!crc lsr 8)
    done;
    !crc lxor 0xFFFFFFFF
end

module Codec (F : Field_intf.S) = struct
  let write_elt w x = Writer.raw w (F.to_bytes x)
  let read_elt r = F.of_bytes (Reader.raw r F.byte_size)

  let write_elt_array w a =
    Writer.u16 w (Array.length a);
    Array.iter (write_elt w) a

  let read_elt_array r =
    let n = Reader.u16 r in
    Array.init n (fun _ -> read_elt r)

  let write_opt_elt_array w a =
    let n = Array.length a in
    Writer.u16 w n;
    (* Presence bitmap, one bit per slot, packed little-endian. *)
    let byte = ref 0 and fill = ref 0 in
    let flush_bits () =
      Writer.u8 w !byte;
      byte := 0;
      fill := 0
    in
    Array.iter
      (fun slot ->
        if slot <> None then byte := !byte lor (1 lsl !fill);
        incr fill;
        if !fill = 8 then flush_bits ())
      a;
    if !fill > 0 then flush_bits ();
    Array.iter (function Some x -> write_elt w x | None -> ()) a

  let read_opt_elt_array r =
    let n = Reader.u16 r in
    let bitmap = Reader.raw r ((n + 7) / 8) in
    let present i = Bytes.get_uint8 bitmap (i / 8) lsr (i mod 8) land 1 = 1 in
    Array.init n (fun i -> if present i then Some (read_elt r) else None)

  let encode_elt x = F.to_bytes x

  let decode_elt b =
    if Bytes.length b <> F.byte_size then
      invalid_arg "Wire.decode_elt: wrong length";
    F.of_bytes b

  let one_shot write read =
    ( (fun v ->
        let w = Writer.create () in
        write w v;
        Writer.contents w),
      fun b ->
        let r = Reader.of_bytes b in
        let v = read r in
        Reader.expect_end r;
        v )

  let encode_elt_array, decode_elt_array =
    one_shot write_elt_array read_elt_array

  let encode_opt_elt_array, decode_opt_elt_array =
    one_shot write_opt_elt_array read_opt_elt_array

  let elt_array_size n = 2 + (n * F.byte_size)

  let opt_elt_array_size a =
    let n = Array.length a in
    let present =
      Array.fold_left (fun acc s -> if s = None then acc else acc + 1) 0 a
    in
    2 + ((n + 7) / 8) + (present * F.byte_size)

  let payload_size ~clique ~poly_sizes =
    (* u16 clique length + u16 per id; u16 poly count + per polynomial a
       u16 id, u16 coefficient count, and the coefficients. *)
    2
    + (2 * List.length clique)
    + 2
    + List.fold_left (fun acc coeffs -> acc + 4 + (coeffs * F.byte_size)) 0 poly_sizes
end
