(** Wire encoding for protocol messages.

    The simulator's communication accounting charges each message its
    true serialized size; this module is where "true serialized size"
    comes from. It provides a minimal deterministic binary format —
    fixed-width little-endian integers, length-prefixed sequences,
    canonical field elements via {!Field_intf.S.to_bytes} — plus codecs
    for the message shapes the protocols exchange (share vectors, gamma
    vectors with holes, [Coin-Gen] grade-cast payloads).

    Encodings are self-delimiting, so codecs compose; decoding is strict
    and raises [Invalid_argument] on trailing garbage, truncation, or
    non-canonical field elements. *)

module Writer : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val raw : t -> bytes -> unit
  val contents : t -> bytes
  val size : t -> int
end

module Reader : sig
  type t

  val of_bytes : bytes -> t
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val raw : t -> int -> bytes
  val is_exhausted : t -> bool

  val expect_end : t -> unit
  (** @raise Invalid_argument if bytes remain. *)
end

module Crc32 : sig
  val digest : bytes -> int
  (** CRC-32 (IEEE 802.3) of the whole buffer, in [[0, 2^32)]. Used to
      checksum persisted pool snapshots so corruption is detected before
      decoding. *)
end

module Codec (F : Field_intf.S) : sig
  val write_elt : Writer.t -> F.t -> unit
  val read_elt : Reader.t -> F.t

  val write_elt_array : Writer.t -> F.t array -> unit
  (** u16 length prefix, then canonical elements. *)

  val read_elt_array : Reader.t -> F.t array

  val write_opt_elt_array : Writer.t -> F.t option array -> unit
  (** Length prefix, presence bitmap, then the present elements — the
      gamma-vector shape ([Coin-Gen] step 3). *)

  val read_opt_elt_array : Reader.t -> F.t option array

  val encode_elt : F.t -> bytes
  val decode_elt : bytes -> F.t
  (** One-shot helpers; [decode_elt] demands the exact length. *)

  val encode_elt_array : F.t array -> bytes
  val decode_elt_array : bytes -> F.t array

  val encode_opt_elt_array : F.t option array -> bytes
  val decode_opt_elt_array : bytes -> F.t option array
  (** One-shot array helpers (strict: decoding demands exact length).
      These are the wire codecs handed to {!Net.create} so byte-level
      corruption faults operate on real encodings. *)

  val elt_array_size : int -> int
  (** Wire size of an array of the given length, without encoding it. *)

  val opt_elt_array_size : F.t option array -> int

  val payload_size : clique:int list -> poly_sizes:int list -> int
  (** Wire size of a [Coin-Gen] grade-cast payload carrying the given
      clique and check polynomials with the given coefficient counts
      (u16 ids and length prefixes). Used for exact gradecast byte
      accounting. *)
end
