(* The adversarial fuzzer, wired into the tier-1 suite.

   Quick mode runs a real campaign — 520 random scenarios across both
   regimes must pass clean — plus the harness self-checks: each known
   injected bug must be found, shrunk, and replayed from its printed
   counterexample line. *)

let check = Alcotest.(check bool)

(* ------------------------- Replay lines -------------------------- *)

let random_config g : Fuzz_config.t =
  let specs = Array.of_list Fuzz.registry in
  let spec = specs.(Prng.int g (Array.length specs)) in
  let fault_bound = Prng.choose g spec.Fuzz.ts in
  let faults = Prng.int g (fault_bound + 1) in
  let bugs =
    [|
      None;
      Some Fuzz_config.Accept_high_degree;
      Some Fuzz_config.Drop_gamma;
      Some Fuzz_config.Lagrange_expose;
      Some Fuzz_config.No_retransmit;
    |]
  in
  let net =
    if Prng.bool g then Fuzz_config.no_degrade
    else
      {
        Fuzz_config.drop = Prng.int g 101;
        delay = Prng.int g 101;
        dup = Prng.int g 101;
        corrupt = Prng.int g 101;
        reorder = Prng.int g 101;
        crash = Prng.int g (faults + 1);
        rt = Prng.int g 9;
      }
  in
  {
    Fuzz_config.seed = Prng.bits g 30;
    prop = spec.Fuzz.name;
    k = Prng.choose g spec.Fuzz.ks;
    regime = spec.Fuzz.regime;
    fault_bound;
    faults;
    m = 1 + Prng.int g spec.Fuzz.max_m;
    net;
    quar = (if spec.Fuzz.max_quar = 0 then 0 else Prng.int g 65);
    bug = Prng.choose g bugs;
  }

let test_replay_roundtrip () =
  let g = Prng.of_int 404 in
  for _ = 1 to 200 do
    let cfg = random_config g in
    let line = Fuzz_config.to_string cfg in
    match Fuzz_config.of_string line with
    | Error e -> Alcotest.failf "%S does not parse back: %s" line e
    | Ok cfg' ->
        check (Printf.sprintf "round-trip of %S" line) true (cfg = cfg')
  done

let test_replay_rejects_garbage () =
  List.iter
    (fun line ->
      match Fuzz_config.of_string line with
      | Ok _ -> Alcotest.failf "%S should not parse" line
      | Error _ -> ())
    [
      "";
      "prop=vss-soundness";
      "prop=x seed=1 k=8 regime=3t+1 t=0 faults=0 m=1";
      "prop=x seed=1 k=8 regime=3t+1 t=1 faults=2 m=1";
      "prop=x seed=1 k=8 regime=3t+1 t=1 faults=0 m=0";
      "prop=x seed=1 k=99 regime=3t+1 t=1 faults=0 m=1";
      "prop=x seed=1 k=8 regime=5t+1 t=1 faults=0 m=1";
      "prop=x seed=q k=8 regime=3t+1 t=1 faults=0 m=1";
      "prop=x seed=1 k=8 regime=3t+1 t=1 faults=0 m=1 bug=nonsense";
      "prop=x seed=1 k=8 regime=3t+1 t=1 faults=0 m=1 junk";
      "prop=x seed=1 k=8 regime=3t+1 t=1 faults=0 m=1 drop=101";
      "prop=x seed=1 k=8 regime=3t+1 t=1 faults=0 m=1 drop=-1";
      "prop=x seed=1 k=8 regime=3t+1 t=1 faults=0 m=1 drop=abc";
      "prop=x seed=1 k=8 regime=3t+1 t=1 faults=0 m=1 crash=1";
      "prop=x seed=1 k=8 regime=3t+1 t=1 faults=1 m=1 crash=2";
      "prop=x seed=1 k=8 regime=3t+1 t=1 faults=0 m=1 rt=9";
      "prop=x seed=1 k=8 regime=3t+1 t=1 faults=0 m=1 quar=65";
      "prop=x seed=1 k=8 regime=3t+1 t=1 faults=0 m=1 quar=-1";
    ]

let test_shrink_candidates_smaller () =
  let g = Prng.of_int 405 in
  for _ = 1 to 200 do
    let cfg = random_config g in
    List.iter
      (fun (c : Fuzz_config.t) ->
        check "candidate strictly smaller" true
          (Fuzz_config.size c < Fuzz_config.size cfg);
        check "candidate stays valid" true
          (c.faults >= 0 && c.faults <= c.fault_bound && c.fault_bound >= 1
         && c.m >= 1);
        check "candidate net stays valid" true
          (c.net.Fuzz_config.crash <= c.faults
          && List.for_all
               (fun x -> x >= 0 && x <= 100)
               [
                 c.net.Fuzz_config.drop;
                 c.net.Fuzz_config.delay;
                 c.net.Fuzz_config.dup;
                 c.net.Fuzz_config.corrupt;
                 c.net.Fuzz_config.reorder;
               ]
          && c.net.Fuzz_config.rt >= 0 && c.net.Fuzz_config.rt <= 8);
        check "candidate keeps prop/seed/bug" true
          (c.prop = cfg.prop && c.seed = cfg.seed && c.bug = cfg.bug))
      (Fuzz_config.shrink_candidates cfg)
  done

(* -------------------------- Campaign ----------------------------- *)

let test_campaign_clean () =
  let report = Fuzz.campaign ~trials:520 ~seed:2026 () in
  (match report.Fuzz.failure with
  | None -> ()
  | Some f -> Alcotest.failf "campaign found:@.%a" Fuzz.pp_failure f);
  check "all trials ran" true (report.Fuzz.trials_run = 520);
  check "all trials passed" true (report.Fuzz.passes = 520);
  let count regime =
    Option.value ~default:0 (List.assoc_opt regime report.Fuzz.per_regime)
  in
  check "3t+1 regime exercised" true (count Fuzz_config.Broadcast > 50);
  check "6t+1 regime exercised" true (count Fuzz_config.Full > 50);
  List.iter
    (fun (spec : Fuzz.prop_spec) ->
      check
        (Printf.sprintf "property %s attempted" spec.Fuzz.name)
        true
        (Option.value ~default:0
           (List.assoc_opt spec.Fuzz.name report.Fuzz.per_property)
        > 0))
    Fuzz.registry

(* ------------------------- Self-checks --------------------------- *)

(* The full harness loop per injected bug: a campaign finds a
   counterexample, shrinking never grows it, and the printed replay
   line alone reproduces the identical failure (all verified inside
   Fuzz.self_check — an [Error] names the broken step). *)
let test_self_check bug () =
  match Fuzz.self_check ~seed:7 bug with
  | Error e -> Alcotest.fail e
  | Ok f ->
      check "shrunk no larger than original" true
        (Fuzz_config.size f.Fuzz.shrunk <= Fuzz_config.size f.Fuzz.original);
      check "bug survives in the replay line" true
        ((Fuzz_config.of_string (Fuzz_config.to_string f.Fuzz.shrunk)
          |> Result.get_ok)
           .Fuzz_config.bug
        = Some bug)

(* The acceptance gate for the fault-injection layer: a fixed-seed
   campaign of degraded-only trials — every one runs under a plan with
   live drop/delay/duplication/corruption/reorder/crash axes and a
   bounded retransmit envelope — must pass clean across the properties
   that admit degradation. *)
let test_degraded_campaign_clean () =
  List.iter
    (fun (property, trials, seed) ->
      let report = Fuzz.campaign ~property ~trials ~seed () in
      (match report.Fuzz.failure with
      | None -> ()
      | Some f ->
          Alcotest.failf "degraded campaign (%s) found:@.%a" property
            Fuzz.pp_failure f);
      check
        (Printf.sprintf "%s: all %d trials passed" property trials)
        true
        (report.Fuzz.passes = trials))
    [
      ("expose-degraded", 150, 31); (* always degraded, drop >= 15% *)
      ("coin-unanimity", 80, 32); (* crash axis live *)
      ("pool-recovery", 50, 33);
      ("bitgen-verdicts", 60, 34);
      ("no-honest-quarantine", 40, 35); (* active sentinel, quar axis live *)
    ]

let test_self_check_requires_bug () =
  (* Without an injected bug the self-check campaign seeds must be
     clean — otherwise the self-checks test nothing. *)
  List.iter
    (fun bug ->
      let report =
        Fuzz.campaign ~property:(Fuzz.target_property bug) ~trials:60 ~seed:7
          ()
      in
      check "target property clean without the bug" true
        (report.Fuzz.failure = None))
    [ Fuzz_config.Lagrange_expose; Fuzz_config.No_retransmit ]

let suite =
  [
    Alcotest.test_case "replay line round-trips" `Quick test_replay_roundtrip;
    Alcotest.test_case "replay rejects malformed lines" `Quick
      test_replay_rejects_garbage;
    Alcotest.test_case "shrink candidates shrink" `Quick
      test_shrink_candidates_smaller;
    Alcotest.test_case "520-trial campaign is clean" `Quick test_campaign_clean;
    Alcotest.test_case "self-check: accept-high-degree" `Quick
      (test_self_check Fuzz_config.Accept_high_degree);
    Alcotest.test_case "self-check: drop-gamma" `Quick
      (test_self_check Fuzz_config.Drop_gamma);
    Alcotest.test_case "self-check: lagrange-expose" `Quick
      (test_self_check Fuzz_config.Lagrange_expose);
    Alcotest.test_case "self-check: no-retransmit" `Quick
      (test_self_check Fuzz_config.No_retransmit);
    Alcotest.test_case "degraded campaigns are clean" `Quick
      test_degraded_campaign_clean;
    Alcotest.test_case "self-check baseline is clean" `Quick
      test_self_check_requires_bug;
  ]
