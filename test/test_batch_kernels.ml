(* Differential tests pinning the batch kernels to their reference
   twins: field batch_eval vs per-point Horner, batch dealing vs
   sequential dealing (values, ticks and PRNG stream), bit-sliced wide
   multiplication vs schoolbook, the arena reconstruct vs the list
   reconstruct, and the optimized Coin-Expose [run] vs [run_reference]
   (values, ticks, traces and ledger evidence). *)

module Q97 = Zq_table.Make (struct let q = 97 end)

(* ---- batch_eval = Horner, per field ------------------------------- *)

module Batch_eval_laws (F : Field_intf.S) = struct
  let horner cs x =
    let acc = ref F.zero in
    for i = Array.length cs - 1 downto 0 do
      acc := F.add (F.mul !acc x) cs.(i)
    done;
    !acc

  let check ~name ~polys ~pts =
    match F.batch_eval with
    | None -> ()
    | Some kernel ->
        let out = kernel polys pts in
        Array.iteri
          (fun j cs ->
            Array.iteri
              (fun i x ->
                if not (F.equal out.(j).(i) (horner cs x)) then
                  Alcotest.failf "%s: poly %d at point %d diverges from Horner"
                    name j i)
              pts)
          polys

  let run seed =
    let g = Prng.of_int seed in
    let rand_poly d = Array.init d (fun _ -> F.random g) in
    (* M = 1, points not a power of two *)
    check ~name:"M=1"
      ~polys:[| rand_poly 4 |]
      ~pts:(Array.init 7 (fun _ -> F.random g));
    (* duplicate evaluation points *)
    let x = F.random g in
    check ~name:"dup points"
      ~polys:(Array.init 3 (fun _ -> rand_poly 5))
      ~pts:[| x; x; F.random g; x |];
    (* t = 0: constant polynomials *)
    check ~name:"constants"
      ~polys:(Array.init 4 (fun _ -> rand_poly 1))
      ~pts:(Array.init 5 (fun _ -> F.random g));
    (* the grid shape: consecutive small points, the FD/AP route in
       table fields *)
    check ~name:"AP grid"
      ~polys:(Array.init 6 (fun _ -> rand_poly 4))
      ~pts:(Array.init 13 (fun i -> F.of_int (i + 1)));
    (* mixed degrees: empty vector (zero poly) and trailing zeros *)
    check ~name:"mixed degrees"
      ~polys:
        [|
          [||];
          rand_poly 1;
          rand_poly 8;
          Array.append (rand_poly 3) [| F.zero; F.zero |];
        |]
      ~pts:(Array.init 13 (fun _ -> F.random g))
end

let test_batch_eval_matches_horner () =
  let module B16 = Batch_eval_laws (Gf2k.GF16) in
  let module B64 = Batch_eval_laws (Fft_field.GF_k64) in
  let module BQ = Batch_eval_laws (Q97) in
  let module BW64 = Batch_eval_laws (Gf2_wide.GF64) in
  B16.run 101;
  B64.run 102;
  BQ.run 103;
  BW64.run 104

(* ---- batch dealing = sequential dealing --------------------------- *)

module Deal_laws (F : Field_intf.S) = struct
  module S = Shamir.Make (F)

  let check ~n ~t ~m ~seed =
    let plan = S.grid ~n ~t in
    let gs = Prng.of_int (seed + 1) in
    let secrets = Array.init m (fun _ -> F.random gs) in
    let g1 = Prng.of_int seed and g2 = Prng.of_int seed in
    let batch, s1 =
      Metrics.with_counting (fun () -> S.deal_batch_with plan g1 ~secrets)
    in
    let seq, s2 =
      Metrics.with_counting (fun () ->
          Array.map (fun secret -> S.deal_with plan g2 ~secret) secrets)
    in
    if not (Array.for_all2 (Array.for_all2 F.equal) batch seq) then
      Alcotest.failf "deal_batch diverges at n=%d t=%d m=%d" n t m;
    if s1 <> s2 then
      Alcotest.failf "deal_batch ticks diverge at n=%d t=%d m=%d" n t m;
    (* both paths must leave the PRNG in the same state *)
    if not (F.equal (F.random g1) (F.random g2)) then
      Alcotest.failf "deal_batch PRNG stream diverges at n=%d t=%d m=%d" n t m

  let run seed =
    check ~n:7 ~t:0 ~m:3 ~seed;
    check ~n:7 ~t:2 ~m:1 ~seed:(seed + 10);
    check ~n:13 ~t:4 ~m:8 ~seed:(seed + 20);
    check ~n:10 ~t:3 ~m:5 ~seed:(seed + 30)
end

let test_deal_batch_matches_sequential () =
  let module D16 = Deal_laws (Gf2k.GF16) in
  let module D64 = Deal_laws (Fft_field.GF_k64) in
  let module DQ = Deal_laws (Q97) in
  D16.run 201;
  D64.run 202;
  DQ.run 203

(* ---- bit-sliced wide kernels -------------------------------------- *)

module Sliced_laws (W : Gf2_wide.S) = struct
  let run seed =
    let g = Prng.of_int seed in
    let lanes = W.Sliced.lanes in
    let xs = Array.init lanes (fun _ -> W.random g) in
    let ys = Array.init lanes (fun _ -> W.random g) in
    let rt = W.Sliced.unslice (W.Sliced.slice xs) in
    Array.iteri
      (fun i x ->
        if not (W.equal x rt.(i)) then
          Alcotest.failf "slice/unslice roundtrip broke lane %d" i)
      xs;
    let prod =
      W.Sliced.unslice (W.Sliced.mul (W.Sliced.slice xs) (W.Sliced.slice ys))
    in
    Array.iteri
      (fun i p ->
        if not (W.equal p (W.mul_schoolbook xs.(i) ys.(i))) then
          Alcotest.failf "sliced mul diverges from schoolbook at lane %d" i)
      prod;
    (* the dispatching [mul] and explicit Karatsuba both agree with
       schoolbook, whichever side of the limb threshold the field is on *)
    for i = 1 to 200 do
      let a = W.random g and b = W.random g in
      let s = W.mul_schoolbook a b in
      if not (W.equal s (W.mul_karatsuba a b)) then
        Alcotest.failf "karatsuba diverges from schoolbook (case %d)" i;
      if not (W.equal s (W.mul a b)) then
        Alcotest.failf "mul dispatch diverges from schoolbook (case %d)" i
    done
end

let test_sliced_and_karatsuba () =
  let module S64 = Sliced_laws (Gf2_wide.GF64) in
  let module S128 = Sliced_laws (Gf2_wide.GF128) in
  let module S256 = Sliced_laws (Gf2_wide.GF256) in
  S64.run 301;
  S128.run 302;
  S256.run 303

(* ---- arena reconstruct = list reconstruct ------------------------- *)

module F16 = Gf2k.GF16
module S16 = Shamir.Make (F16)

let same_opt = function
  | Some a, Some b -> F16.equal a b
  | None, None -> true
  | _ -> false

(* Run both twins under counting and require identical answers and
   identical tick vectors. Each twin runs once uncounted first: ticks
   are history-dependent (a subset's basis rows and weights are built,
   and ticked, on first use and cached after), and the two paths pay
   their one-time builds at different moments — the plan builds its
   full-grid rows at construction, the list twin on first use — so the
   pinned contract is steady-state parity. *)
let both name plan ~ids ~ys ~len =
  let points = List.init len (fun i -> (ids.(i), ys.(i))) in
  ignore (S16.G.reconstruct_zero_checked_into plan ~ids ~ys ~len);
  ignore (S16.G.reconstruct_zero_checked plan points);
  let arr, s1 =
    Metrics.with_counting (fun () ->
        S16.G.reconstruct_zero_checked_into plan ~ids ~ys ~len)
  in
  let lst, s2 =
    Metrics.with_counting (fun () -> S16.G.reconstruct_zero_checked plan points)
  in
  if not (same_opt (arr, lst)) then
    Alcotest.failf "%s: arena and list reconstruct disagree" name;
  if s1 <> s2 then Alcotest.failf "%s: arena and list ticks disagree" name;
  arr

let test_arena_reconstruct_matches_list () =
  let n = 13 and t = 3 in
  let plan = S16.grid ~n ~t in
  let g = Prng.of_int 4242 in
  let secret = F16.random g in
  let shares = S16.deal_with plan g ~secret in
  let full_ids = Array.init n Fun.id in
  (* full grid, in order: the fast path; run twice to hit the cached
     weight vector *)
  (match both "full" plan ~ids:full_ids ~ys:shares ~len:n with
  | Some v when F16.equal v secret -> ()
  | _ -> Alcotest.fail "full-grid reconstruct missed the secret");
  (match both "full (cached)" plan ~ids:full_ids ~ys:shares ~len:n with
  | Some v when F16.equal v secret -> ()
  | _ -> Alcotest.fail "cached full-grid reconstruct missed the secret");
  (* shuffled proper subset *)
  let sub = [| 5; 1; 9; 7; 2 |] in
  let ys = Array.map (fun i -> shares.(i)) sub in
  (match both "subset" plan ~ids:sub ~ys ~len:5 with
  | Some v when F16.equal v secret -> ()
  | _ -> Alcotest.fail "subset reconstruct missed the secret");
  (* duplicate id *)
  let dup = [| 1; 2; 2; 5; 6 |] in
  let ys = Array.map (fun i -> shares.(i)) dup in
  (match both "duplicate" plan ~ids:dup ~ys ~len:5 with
  | None -> ()
  | Some _ -> Alcotest.fail "duplicate ids must not reconstruct");
  (* a corrupted share fails the degree check on both paths *)
  let bad = Array.copy shares in
  bad.(4) <- F16.add bad.(4) F16.one;
  (match both "corrupted" plan ~ids:full_ids ~ys:bad ~len:n with
  | None -> ()
  | Some _ -> Alcotest.fail "corrupted share must not pass the check");
  (* too few points *)
  let ys = Array.map (fun i -> shares.(i)) [| 0; 1; 2 |] in
  (match both "too few" plan ~ids:[| 0; 1; 2 |] ~ys ~len:3 with
  | None -> ()
  | Some _ -> Alcotest.fail "t points must not reconstruct");
  (* more points than players: a duplicated inbox, larger than the
     plan's scratch — answered None, not out-of-bounds *)
  let over_ids = Array.append full_ids [| 0 |] in
  let over_ys = Array.append shares [| shares.(0) |] in
  (match both "oversized" plan ~ids:over_ids ~ys:over_ys ~len:(n + 1) with
  | None -> ()
  | Some _ -> Alcotest.fail "oversized inbox must not reconstruct");
  (* malformed input still raises *)
  Alcotest.check_raises "empty" (Invalid_argument "Grid: no points")
    (fun () ->
      ignore
        (S16.G.reconstruct_zero_checked_into plan ~ids:[||] ~ys:[||] ~len:0));
  Alcotest.check_raises "id out of range"
    (Invalid_argument "Grid: player id out of range") (fun () ->
      ignore
        (S16.G.reconstruct_zero_checked_into plan ~ids:[| 0; 13 |]
           ~ys:[| secret; secret |] ~len:2))

(* ---- Coin-Expose: run = run_reference ----------------------------- *)

module C16 = Sealed_coin.Make (F16)
module CE16 = Coin_expose.Make (F16)

let expose_behaviors : (string * (int -> CE16.sender_behavior) option) list =
  [
    ("honest", None);
    ("one silent", Some (fun i -> if i = 3 then CE16.Silent else CE16.Honest));
    ("one lying", Some (fun i -> if i = 5 then CE16.Send F16.one else CE16.Honest));
    ( "equivocator",
      Some
        (fun i ->
          if i = 2 then
            CE16.Equivocate
              (fun dst -> if dst mod 2 = 0 then Some F16.one else None)
          else CE16.Honest) );
  ]

let same_results a b =
  Array.for_all2
    (fun x y ->
      match (x, y) with
      | Some x, Some y -> F16.equal x y
      | None, None -> true
      | _ -> false)
    a b

let test_run_matches_reference () =
  let n = 13 and t = 2 in
  let coin = C16.dealer_coin (Prng.of_int 9091) ~n ~t in
  List.iter
    (fun (name, sender_behavior) ->
      (* warm the plan's subset caches so the counted runs compare
         steady-state ticks (cache builds are one-time and land in
         whichever path runs first) *)
      ignore (CE16.run_reference ?sender_behavior coin);
      ignore (CE16.run ?sender_behavior coin);
      (* values and ticks *)
      let a, sa =
        Metrics.with_counting (fun () ->
            CE16.run_reference ?sender_behavior coin)
      in
      let b, sb =
        Metrics.with_counting (fun () -> CE16.run ?sender_behavior coin)
      in
      if not (same_results a b) then
        Alcotest.failf "%s: run and run_reference decode differently" name;
      if sa <> sb then
        Alcotest.failf "%s: run and run_reference tick differently" name;
      (* trace parity: same events, in order *)
      let a', ta =
        Trace.collect (fun () -> CE16.run_reference ?sender_behavior coin)
      in
      let b', tb = Trace.collect (fun () -> CE16.run ?sender_behavior coin) in
      if not (same_results a' b') then
        Alcotest.failf "%s: traced runs decode differently" name;
      let render tr =
        List.map
          (fun (r, e) -> Printf.sprintf "%d:%s" r (Fmt.str "%a" Trace.pp_event e))
          (Trace.all_events tr)
      in
      if render ta <> render tb then
        Alcotest.failf "%s: run and run_reference trace differently" name;
      (* evidence parity under an active ledger *)
      let l1 = Sentinel.Ledger.create ~config:(Sentinel.active ()) ~n () in
      let l2 = Sentinel.Ledger.create ~config:(Sentinel.active ()) ~n () in
      let a'' =
        Sentinel.with_ledger l1 (fun () ->
            CE16.run_reference ?sender_behavior coin)
      in
      let b'' =
        Sentinel.with_ledger l2 (fun () -> CE16.run ?sender_behavior coin)
      in
      if not (same_results a'' b'') then
        Alcotest.failf "%s: ledgered runs decode differently" name;
      if Sentinel.Ledger.dump l1 <> Sentinel.Ledger.dump l2 then
        Alcotest.failf "%s: ledgers recorded different evidence" name;
      if Sentinel.Ledger.suspects l1 <> Sentinel.Ledger.suspects l2 then
        Alcotest.failf "%s: ledgers suspect different players" name)
    expose_behaviors

(* ---- traced Pool runs draw the same coins ------------------------- *)

module Pool16 = Pool.Make (F16)

let test_pool_traced_parity () =
  let mk () =
    Pool16.create ~prng:(Prng.of_int 77) ~n:13 ~t:2 ~batch_size:64
      ~refill_threshold:3 ~initial_seed:6 ()
  in
  let draws p = Array.init 40 (fun _ -> Pool16.draw_kary p) in
  (* enough draws to cross a refill, so the traced run covers dealing,
     exposure and reconstruction; one throwaway run first warms the
     shared grid caches so both counted runs see steady-state ticks *)
  ignore (draws (mk ()));
  let a, sa = Metrics.with_counting (fun () -> draws (mk ())) in
  let (b, tr), sb =
    Metrics.with_counting (fun () -> Trace.collect (fun () -> draws (mk ())))
  in
  if not (Array.for_all2 F16.equal a b) then
    Alcotest.fail "tracing perturbed the pool's draw sequence";
  if sa <> sb then Alcotest.fail "tracing perturbed the pool's tick counts";
  if Trace.all_events tr = [] then
    Alcotest.fail "traced pool run recorded no events"

let suite =
  [
    Alcotest.test_case "batch_eval matches Horner" `Quick
      test_batch_eval_matches_horner;
    Alcotest.test_case "deal_batch matches sequential deals" `Quick
      test_deal_batch_matches_sequential;
    Alcotest.test_case "sliced and karatsuba match schoolbook" `Quick
      test_sliced_and_karatsuba;
    Alcotest.test_case "arena reconstruct matches list twin" `Quick
      test_arena_reconstruct_matches_list;
    Alcotest.test_case "coin-expose run matches reference" `Quick
      test_run_matches_reference;
    Alcotest.test_case "traced pool draws are unperturbed" `Quick
      test_pool_traced_parity;
  ]
