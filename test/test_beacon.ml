(* Beacon service: batched vending, chain integrity, backpressure,
   degraded/halted surfacing, and mid-epoch snapshot resume. *)

module F = Gf2k.GF16
module BC = Beacon.Make (F)
module PL = BC.P
module CE = PL.CE

let n = 13
let t = 2

let mk_pool ?expose_behavior ?sentinel seed =
  PL.create ?expose_behavior ?sentinel ~prng:(Prng.of_int seed) ~n ~t
    ~batch_size:16 ~refill_threshold:3 ~initial_seed:6 ()

let mk ?key ?max_pending ?(seed = 1) () =
  BC.create ?key ?max_pending ~pool:(mk_pool seed) ()

let ok_or_fail = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* --- hash ----------------------------------------------------------- *)

let test_hash_basics () =
  let d1 = Beacon_hash.digest (Bytes.of_string "hello beacon") in
  let d2 = Beacon_hash.digest (Bytes.of_string "hello beacon") in
  let d3 = Beacon_hash.digest (Bytes.of_string "hello beacoN") in
  Alcotest.(check bool) "digest is deterministic" true (Beacon_hash.equal d1 d2);
  Alcotest.(check bool) "one flipped byte changes it" false
    (Beacon_hash.equal d1 d3);
  let m1 = Beacon_hash.mac ~key:"k1" (Bytes.of_string "msg") in
  let m2 = Beacon_hash.mac ~key:"k2" (Bytes.of_string "msg") in
  Alcotest.(check bool) "MAC separates keys" false (Beacon_hash.equal m1 m2);
  Alcotest.(check bool) "MAC separates from digest" false
    (Beacon_hash.equal m1 (Beacon_hash.digest (Bytes.of_string "msg")));
  Alcotest.(check bool) "hex round-trips" true
    (match Beacon_hash.of_hex (Beacon_hash.to_hex d1) with
    | Ok d -> Beacon_hash.equal d d1
    | Error _ -> false);
  Alcotest.(check bool) "bytes round-trip" true
    (Beacon_hash.equal (Beacon_hash.of_bytes (Beacon_hash.to_bytes d1)) d1);
  Alcotest.(check bool) "bad hex is rejected" true
    (Result.is_error (Beacon_hash.of_hex "zz"))

(* --- liveness and amortization -------------------------------------- *)

let test_vend_liveness () =
  let b = mk () in
  let got = ref [] in
  let ids =
    List.init 10 (fun _ ->
        match BC.request b ~callback:(fun f -> got := f :: !got) () with
        | Ok id -> id
        | Error r -> Alcotest.failf "rejected: %s" (BC.reject_name r))
  in
  Alcotest.(check int) "all queued" 10 (BC.pending b);
  let e = ok_or_fail (BC.close_epoch b) in
  Alcotest.(check int) "one coin vends all ten" 10 e.BC.vended;
  Alcotest.(check int) "queue drained" 0 (BC.pending b);
  Alcotest.(check (list int)) "callbacks fire in admission order" ids
    (List.rev_map (fun f -> f.BC.request_id) !got);
  List.iter
    (fun f ->
      Alcotest.(check int) "field-width bits by default" F.k_bits
        (Array.length f.BC.bits);
      Alcotest.(check int) "stamped with the vending epoch" e.BC.seq
        f.BC.epoch)
    !got;
  let s = BC.stats b in
  Alcotest.(check int) "stats count the vends" 10 s.BC.vended;
  Alcotest.(check int) "one epoch" 1 s.BC.epochs

let test_vend_determinism () =
  let run () =
    let b = mk () in
    let bits = ref [] in
    for _ = 1 to 3 do
      for _ = 1 to 5 do
        match BC.request b ~nbits:17 ~callback:(fun f -> bits := f.BC.bits :: !bits) () with
        | Ok _ -> ()
        | Error r -> Alcotest.failf "rejected: %s" (BC.reject_name r)
      done;
      ignore (ok_or_fail (BC.close_epoch b))
    done;
    (List.map (fun e -> Beacon_hash.to_hex e.BC.digest) (BC.chain b), !bits)
  in
  let chain1, bits1 = run () in
  let chain2, bits2 = run () in
  Alcotest.(check (list string)) "same seed, same chain" chain1 chain2;
  Alcotest.(check bool) "same seed, same vended bits" true (bits1 = bits2);
  (* Distinct requests in one epoch must not share a stream. *)
  match bits1 with
  | a :: b :: _ -> Alcotest.(check bool) "streams differ per request" false (a = b)
  | _ -> Alcotest.fail "expected vended bits"

(* --- chain integrity ------------------------------------------------ *)

let serve_epochs ?(epochs = 4) ?(requests = 3) b =
  for _ = 1 to epochs do
    for _ = 1 to requests do
      match BC.request b ~callback:ignore () with
      | Ok _ -> ()
      | Error r -> Alcotest.failf "rejected: %s" (BC.reject_name r)
    done;
    ignore (ok_or_fail (BC.close_epoch b))
  done

let test_chain_verifies_and_tamper_detected () =
  let b = mk ~key:"test-key" () in
  serve_epochs b;
  let chain = BC.chain b in
  (match BC.verify_chain ~key:"test-key" chain with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "honest chain rejected: %s" msg);
  (match BC.verify_chain ~key:"wrong-key" chain with
  | Ok () -> Alcotest.fail "wrong key accepted"
  | Error msg ->
      Alcotest.(check bool) "wrong key fails on the MAC" true
        (String.length msg > 0));
  let tampered =
    List.map
      (fun e -> if e.BC.seq = 2 then { e with BC.vended = e.BC.vended + 1 } else e)
      chain
  in
  (match BC.verify_chain ~key:"test-key" tampered with
  | Ok () -> Alcotest.fail "tampered field accepted"
  | Error _ -> ());
  let dropped = List.filter (fun e -> e.BC.seq <> 1) chain in
  match BC.verify_chain ~key:"test-key" dropped with
  | Ok () -> Alcotest.fail "dropped epoch accepted"
  | Error _ -> ()

let test_transcript_roundtrip () =
  let b = mk ~key:"test-key" () in
  serve_epochs b;
  let chain = BC.chain b in
  let parsed =
    List.map
      (fun e ->
        match BC.epoch_of_json (BC.epoch_to_json e) with
        | Ok e' -> e'
        | Error msg -> Alcotest.failf "roundtrip failed: %s" msg)
      chain
  in
  Alcotest.(check bool) "roundtrip preserves every field" true (parsed = chain);
  (match BC.verify_chain ~key:"test-key" parsed with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "parsed chain rejected: %s" msg);
  Alcotest.(check bool) "garbage line is an Error, not an exception" true
    (Result.is_error (BC.epoch_of_json "{\"schema\":\"nope\"}"))

(* --- admission control ---------------------------------------------- *)

let test_queue_full_sheds () =
  let b = mk ~max_pending:2 () in
  let admit () = BC.request b ~callback:ignore () in
  Alcotest.(check bool) "first admitted" true (Result.is_ok (admit ()));
  Alcotest.(check bool) "second admitted" true (Result.is_ok (admit ()));
  (match admit () with
  | Error BC.Queue_full -> ()
  | Ok _ -> Alcotest.fail "third admitted past max_pending"
  | Error r -> Alcotest.failf "wrong reject: %s" (BC.reject_name r));
  let e = ok_or_fail (BC.close_epoch b) in
  Alcotest.(check int) "both queued vend" 2 e.BC.vended;
  Alcotest.(check int) "shed recorded on the epoch" 1 e.BC.shed;
  Alcotest.(check int) "shed attributed to the queue bound" 1
    (BC.stats b).BC.shed_queue_full

(* Exactly t persistent liars under an active sentinel: quarantine
   evidence accumulates, the beacon turns Degraded (still vending), and
   admission above the soft cap sheds with Pool_pressure. *)
let test_quarantine_degrades_and_soft_cap_sheds () =
  let liars = [ 0; 1 ] in
  let expose_behavior _refill i =
    if List.mem i liars then CE.Send (F.of_int 0xBEEF) else CE.Honest
  in
  let pool =
    mk_pool ~expose_behavior
      ~sentinel:(Some (Sentinel.active ~threshold:6 ()))
      7100
  in
  let b = BC.create ~max_pending:4 ~pool () in
  for _ = 1 to 40 do
    ignore (ok_or_fail (BC.close_epoch b))
  done;
  (match BC.state b with
  | BC.Degraded _ -> ()
  | s -> Alcotest.failf "expected Degraded, got %s" (BC.state_label s));
  let admit () = BC.request b ~callback:ignore () in
  Alcotest.(check bool) "under soft cap admitted" true (Result.is_ok (admit ()));
  Alcotest.(check bool) "at soft cap admitted" true (Result.is_ok (admit ()));
  (match admit () with
  | Error BC.Pool_pressure -> ()
  | Ok _ -> Alcotest.fail "admitted past the degraded soft cap"
  | Error r -> Alcotest.failf "wrong reject: %s" (BC.reject_name r));
  let e = ok_or_fail (BC.close_epoch b) in
  Alcotest.(check string) "epoch is flagged degraded" "degraded" e.BC.flags;
  Alcotest.(check int) "both admitted requests vend" 2 e.BC.vended

(* Past the fault bound the pool refuses in Safe_mode; the beacon must
   surface that as a sticky Halted state — shedding, not crashing. *)
let test_safe_mode_halts () =
  let liars = [ 0; 1; 2 ] in
  let expose_behavior _refill i =
    if List.mem i liars then CE.Send (F.of_int 0xBEEF) else CE.Honest
  in
  let pool =
    mk_pool ~expose_behavior
      ~sentinel:(Some (Sentinel.active ~threshold:6 ()))
      7200
  in
  let b = BC.create ~pool () in
  let vends = ref 0 in
  let halted = ref None in
  (try
     (* One request pending at every close: the one in flight when the
        pool trips Safe_mode must be shed, not vended. *)
     for _ = 1 to 40 do
       ignore (BC.request b ~callback:(fun _ -> incr vends) ());
       match BC.close_epoch b with
       | Ok _ -> ()
       | Error msg ->
           halted := Some msg;
           raise Exit
     done
   with Exit -> ());
  Alcotest.(check int) "pre-halt epochs vended, the in-flight one did not"
    (BC.stats b).BC.epochs !vends;
  (match !halted with
  | None -> Alcotest.fail "beacon kept vending past the fault bound"
  | Some _ -> ());
  (match BC.state b with
  | BC.Halted _ -> ()
  | s -> Alcotest.failf "expected Halted, got %s" (BC.state_label s));
  Alcotest.(check int) "pending shed at halt" 0 (BC.pending b);
  Alcotest.(check bool) "halt shed is attributed" true
    ((BC.stats b).BC.shed_halted >= 1);
  (match BC.request b ~callback:ignore () with
  | Error (BC.Beacon_halted _) -> ()
  | Ok _ -> Alcotest.fail "admission after halt"
  | Error r -> Alcotest.failf "wrong reject: %s" (BC.reject_name r));
  match BC.close_epoch b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "epoch emitted after halt"

(* --- persistence ----------------------------------------------------- *)

(* Snapshot taken mid-epoch (requests pending, chain at seq 3): the
   restored beacon resumes the sequence exactly — no seq reused, none
   skipped — and the transcript spanning the restart still verifies.
   Pending requests are not persisted; the restart sheds them. *)
let test_snapshot_resumes_sequence () =
  let b = mk ~key:"test-key" ~seed:42 () in
  serve_epochs ~epochs:3 b;
  ignore (BC.request b ~callback:ignore ());
  ignore (BC.request b ~callback:ignore ());
  let before = BC.chain b in
  let head = BC.head b in
  let bytes = BC.save b in
  let b' =
    BC.load ~key:"test-key" ~expect_head:head ~prng:(Prng.of_int 43)
      ~batch_size:16 ~refill_threshold:3 bytes
  in
  Alcotest.(check int) "sequence resumes at the next epoch" 3 (BC.next_seq b');
  Alcotest.(check bool) "head carried over" true
    (Beacon_hash.equal head (BC.head b'));
  Alcotest.(check int) "pending queue is not persisted" 0 (BC.pending b');
  Alcotest.(check int) "lifetime counters survive" 9 (BC.stats b').BC.vended;
  serve_epochs ~epochs:2 b';
  let combined = before @ BC.chain b' in
  Alcotest.(check (list int)) "gapless seq across the restart"
    [ 0; 1; 2; 3; 4 ]
    (List.map (fun e -> e.BC.seq) combined);
  match BC.verify_chain ~key:"test-key" combined with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "chain broken across restart: %s" msg

let test_snapshot_rejects_mismatch_and_damage () =
  let b = mk ~seed:42 () in
  serve_epochs ~epochs:2 b;
  let bytes = BC.save b in
  (* A head the snapshot does not extend: refuse to restore. *)
  (match
     BC.load ~expect_head:Beacon_hash.zero ~prng:(Prng.of_int 43)
       ~batch_size:16 ~refill_threshold:3 bytes
   with
  | _ -> Alcotest.fail "restored a snapshot with the wrong chain head"
  | exception BC.Corrupt_snapshot msg ->
      Alcotest.(check bool) "diagnostic names the mismatch" true
        (String.length msg > 0));
  (* One flipped payload byte: the checksum must catch it. *)
  let damaged = Bytes.copy bytes in
  let i = Bytes.length damaged - 1 in
  Bytes.set damaged i (Char.chr (Char.code (Bytes.get damaged i) lxor 1));
  match
    BC.load ~prng:(Prng.of_int 43) ~batch_size:16 ~refill_threshold:3 damaged
  with
  | _ -> Alcotest.fail "restored a damaged snapshot"
  | exception BC.Corrupt_snapshot _ -> ()

(* --- tracing --------------------------------------------------------- *)

let test_vend_trace_events () =
  let b = mk () in
  let (), trace =
    Trace.collect (fun () ->
        for _ = 1 to 3 do
          ignore (BC.request b ~callback:ignore ())
        done;
        ignore (ok_or_fail (BC.close_epoch b)))
  in
  let jsonl = Fmt.str "%a" Trace.pp_jsonl trace in
  let count_occurrences needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i acc =
      if i + nl > hl then acc
      else go (i + 1) (if String.sub hay i nl = needle then acc + 1 else acc)
    in
    go 0 0
  in
  Alcotest.(check int) "one vend event per request" 3
    (count_occurrences "\"event\":\"vend\"" jsonl);
  Alcotest.(check bool) "vends sit inside the beacon.epoch span" true
    (count_occurrences "beacon.epoch" jsonl >= 1)

(* --- arrivals -------------------------------------------------------- *)

let test_arrivals () =
  let mean samples =
    float_of_int (List.fold_left ( + ) 0 samples)
    /. float_of_int (List.length samples)
  in
  let draw arr k = List.init k (fun _ -> BC.Arrival.next arr) in
  let p1 = BC.Arrival.poisson ~rate:50. ~seed:9 in
  let p2 = BC.Arrival.poisson ~rate:50. ~seed:9 in
  let s1 = draw p1 400 and s2 = draw p2 400 in
  Alcotest.(check bool) "poisson is seed-deterministic" true (s1 = s2);
  let m = mean s1 in
  Alcotest.(check bool) "poisson mean near the rate" true (m > 40. && m < 60.);
  Alcotest.(check bool) "no negative arrivals" true
    (List.for_all (fun k -> k >= 0) s1);
  (* Large rate exercises the normal-approximation branch. *)
  let big = mean (draw (BC.Arrival.poisson ~rate:1000. ~seed:3) 200) in
  Alcotest.(check bool) "large-rate mean near the rate" true
    (big > 900. && big < 1100.);
  let bm = mean (draw (BC.Arrival.bursty ~rate:50. ~seed:11 ()) 2000) in
  Alcotest.(check bool) "bursty long-run mean near the rate" true
    (bm > 40. && bm < 60.);
  Alcotest.(check string) "names" "poisson" (BC.Arrival.name p1);
  Alcotest.(check string) "names" "bursty"
    (BC.Arrival.name (BC.Arrival.bursty ~rate:1. ~seed:1 ()))

let suite =
  [
    Alcotest.test_case "hash: digest/mac/hex basics" `Quick test_hash_basics;
    Alcotest.test_case "vend: liveness and amortization" `Quick
      test_vend_liveness;
    Alcotest.test_case "vend: deterministic, per-request streams" `Quick
      test_vend_determinism;
    Alcotest.test_case "chain: verifies; tamper and drop detected" `Quick
      test_chain_verifies_and_tamper_detected;
    Alcotest.test_case "chain: transcript JSON roundtrip" `Quick
      test_transcript_roundtrip;
    Alcotest.test_case "admission: hard queue bound sheds" `Quick
      test_queue_full_sheds;
    Alcotest.test_case "admission: quarantine degrades, soft cap sheds" `Quick
      test_quarantine_degrades_and_soft_cap_sheds;
    Alcotest.test_case "safe mode surfaces as a sticky halt" `Quick
      test_safe_mode_halts;
    Alcotest.test_case "snapshot: mid-epoch save resumes the sequence" `Quick
      test_snapshot_resumes_sequence;
    Alcotest.test_case "snapshot: head mismatch and damage rejected" `Quick
      test_snapshot_rejects_mismatch_and_damage;
    Alcotest.test_case "trace: one vend event per request" `Quick
      test_vend_trace_events;
    Alcotest.test_case "arrivals: deterministic, mean-correct" `Quick
      test_arrivals;
  ]
