(* Crash-consistent beacon durability: journal framing and torn-tail
   recovery, write-ahead attach/replay semantics, request dedup across
   restarts, recovery under a degraded or safe-moded pool, and the
   deterministic crash-point harness sweep. *)

module F = Gf2k.GF16
module BC = Beacon.Make (F)
module PL = BC.P
module CE = PL.CE
module CG = Coin_gen.Make (F)
module J = Beacon_journal

let n = 13
let t = 2

let mk_pool ?adversary ?expose_behavior ?max_ba_iterations
    ?max_refill_attempts ?sentinel seed =
  PL.create ?adversary ?expose_behavior ?max_ba_iterations
    ?max_refill_attempts ?sentinel ~prng:(Prng.of_int seed) ~n ~t
    ~batch_size:16 ~refill_threshold:3 ~initial_seed:6 ()

let mk ?key ?(seed = 1) () = BC.create ?key ~pool:(mk_pool seed) ()

let ok_or_fail = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* Per-test scratch directories: unique under the system temp dir,
   recursively cleared so reruns start clean. *)
let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let scratch name =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dprbg-recovery-%d-%s" (Unix.getpid ()) name)
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  dir

let in_scratch name f =
  let dir = scratch name in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* --- journal framing ------------------------------------------------ *)

let test_journal_roundtrip () =
  in_scratch "roundtrip" @@ fun dir ->
  let path = Filename.concat dir "j" in
  let w = J.create ~sync:J.Flush_only path in
  let payloads = [ "alpha"; ""; String.make 300 'z' ] in
  List.iter (fun p -> J.append w (Bytes.of_string p)) payloads;
  J.sync w;
  J.close w;
  let r = J.recover path in
  Alcotest.(check int) "no torn bytes" 0 r.J.torn_bytes;
  Alcotest.(check int) "seq past the appends" (List.length payloads)
    r.J.next_record_seq;
  Alcotest.(check (list string)) "payloads back verbatim" payloads
    (List.map Bytes.to_string r.J.records);
  (* close is idempotent. *)
  J.close w

let test_journal_open_append_continues () =
  in_scratch "append" @@ fun dir ->
  let path = Filename.concat dir "j" in
  let w = J.create ~sync:J.Flush_only path in
  J.append w (Bytes.of_string "one");
  J.close w;
  let r, w2 = J.open_append ~sync:J.Flush_only path in
  Alcotest.(check int) "one record back" 1 (List.length r.J.records);
  J.append w2 (Bytes.of_string "two");
  J.close w2;
  let r2 = J.recover path in
  Alcotest.(check (list string)) "appended after the existing tail"
    [ "one"; "two" ]
    (List.map Bytes.to_string r2.J.records);
  Alcotest.(check int) "record seq continued" 2 r2.J.next_record_seq;
  (* reset starts the numbering over with an empty file. *)
  let w3 = J.reset ~sync:J.Flush_only path in
  J.close w3;
  let r3 = J.recover path in
  Alcotest.(check int) "reset empties the journal" 0
    (List.length r3.J.records);
  Alcotest.(check int) "reset restarts the seq" 0 r3.J.next_record_seq

(* The tentpole framing guarantee: truncating the file at EVERY byte
   offset yields a clean recovery of a record prefix — never an
   exception, never a half-parsed record. *)
let test_journal_torn_tail_every_offset () =
  in_scratch "torn" @@ fun dir ->
  let path = Filename.concat dir "j" in
  let w = J.create ~sync:J.Flush_only path in
  let payloads = [ "first-record"; "second"; String.make 64 'q' ] in
  List.iter (fun p -> J.append w (Bytes.of_string p)) payloads;
  J.close w;
  let whole =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let torn_path = Filename.concat dir "torn" in
  for cut = 0 to String.length whole - 1 do
    let oc = open_out_bin torn_path in
    output_string oc (String.sub whole 0 cut);
    close_out oc;
    let r = J.recover torn_path in
    let got = List.map Bytes.to_string r.J.records in
    let expect_prefix l = got = List.filteri (fun i _ -> i < l) payloads in
    Alcotest.(check bool)
      (Printf.sprintf "cut at %d recovers a record prefix (got %d)" cut
         (List.length got))
      true
      (expect_prefix (List.length got));
    Alcotest.(check int)
      (Printf.sprintf "cut at %d accounts for every torn byte" cut)
      cut
      (r.J.valid_len + r.J.torn_bytes)
  done

let test_journal_mid_corruption_fatal () =
  in_scratch "mid" @@ fun dir ->
  let path = Filename.concat dir "j" in
  let w = J.create ~sync:J.Flush_only path in
  J.append w (Bytes.of_string "record-zero");
  J.append w (Bytes.of_string "record-one");
  J.close w;
  (* Flip a payload byte of record 0: the damage sits before an intact
     record, so it cannot be a torn write and must be fatal. The
     payload starts after the 3-byte header and the 8-byte frame. *)
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd (3 + 8 + 6) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "\xff") 0 1);
  Unix.close fd;
  (match J.recover path with
  | (_ : J.recovery) -> Alcotest.fail "mid-journal corruption was accepted"
  | exception J.Corrupt_journal msg ->
      Alcotest.(check bool)
        (Printf.sprintf "diagnostic names the record: %s" msg)
        true
        (String.length msg > 0));
  (* A wrong magic is fatal too — it is some other file, not a torn
     journal. *)
  let other = Filename.concat dir "other" in
  let oc = open_out_bin other in
  output_string oc "not a journal at all";
  close_out oc;
  match J.recover other with
  | (_ : J.recovery) -> Alcotest.fail "foreign file accepted as a journal"
  | exception J.Corrupt_journal _ -> ()

let test_crash_point_budget () =
  in_scratch "budget" @@ fun dir ->
  let path = Filename.concat dir "j" in
  let workload () =
    (try Sys.remove path with Sys_error _ -> ());
    let w = J.create ~sync:J.Flush_only path in
    J.append w (Bytes.of_string "aaaa");
    J.append w (Bytes.of_string "bbbb");
    J.close w
  in
  let (), points = J.Crash_point.count workload in
  Alcotest.(check bool)
    (Printf.sprintf "workload has points (%d)" points)
    true (points > 0);
  (* Budget 0 crashes on the very first byte; a budget beyond the count
     completes. Either way the ambient mode is restored. *)
  (match J.Crash_point.with_budget 0 workload with
  | `Crashed -> ()
  | `Completed () -> Alcotest.fail "zero budget did not crash");
  (match J.Crash_point.with_budget (points + 1) workload with
  | `Completed () -> ()
  | `Crashed -> Alcotest.fail "over-budget run crashed");
  let (), again = J.Crash_point.count workload in
  Alcotest.(check int) "counting is deterministic" points again

let test_write_file_atomic () =
  in_scratch "atomic" @@ fun dir ->
  let path = Filename.concat dir "f" in
  J.write_file_atomic path (Bytes.of_string "v1");
  J.write_file_atomic path (Bytes.of_string "v2-longer");
  let ic = open_in_bin path in
  let got = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "last write wins" "v2-longer" got;
  Alcotest.(check bool) "no temp left behind" false
    (Sys.file_exists (path ^ ".tmp"))

(* --- durable beacon: attach / replay -------------------------------- *)

let serve_durable ?(epochs = 3) ?(requests = 2) d =
  List.init epochs (fun _ ->
      for _ = 1 to requests do
        match BC.Durable.request d ~callback:ignore () with
        | Ok _ -> ()
        | Error r -> Alcotest.failf "rejected: %s" (BC.reject_name r)
      done;
      ok_or_fail (BC.Durable.close_epoch d))

let test_empty_journal_attach () =
  in_scratch "empty" @@ fun dir ->
  let jp = Filename.concat dir "j" in
  let d, rs = BC.Durable.attach ~journal:jp ~sync:J.Flush_only (mk ()) in
  Alcotest.(check int) "nothing replayed" 0
    (List.length rs.BC.Durable.replayed);
  Alcotest.(check int) "nothing torn" 0 rs.BC.Durable.torn_bytes;
  Alcotest.(check bool) "journal file created" true (Sys.file_exists jp);
  let served = serve_durable d in
  BC.Durable.close d;
  Alcotest.(check int) "served" 3 (List.length served)

let test_journal_only_recovery () =
  in_scratch "journal-only" @@ fun dir ->
  let jp = Filename.concat dir "j" in
  (* Incarnation 1: no snapshot ever written — crash before the first
     rotation. *)
  let d1, _ = BC.Durable.attach ~journal:jp ~sync:J.Flush_only (mk ()) in
  let served = serve_durable ~epochs:4 d1 in
  BC.Durable.close d1;
  (* Incarnation 2: a freshly created beacon (same seed) replays the
     whole chain from the genesis head. *)
  let b2 = mk () in
  let d2, rs = BC.Durable.attach ~journal:jp ~sync:J.Flush_only b2 in
  Alcotest.(check int) "all four epochs replayed" 4
    (List.length rs.BC.Durable.replayed);
  Alcotest.(check int) "resumes past the replayed tail" 4 (BC.next_seq b2);
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "epoch %d replays digest-identical" a.BC.seq)
        true
        (Beacon_hash.equal a.BC.digest b.BC.digest))
    served rs.BC.Durable.replayed;
  (* The restored incarnation keeps extending the same verifiable
     chain. *)
  let more = serve_durable ~epochs:2 d2 in
  BC.Durable.close d2;
  (match BC.verify_chain ~key:"dprbg-beacon" (rs.BC.Durable.replayed @ more)
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "recovered chain rejected: %s" msg);
  match BC.verify_chain ~key:"dprbg-beacon" more with
  | Ok () -> () (* a slice starting mid-chain verifies too *)
  | Error msg -> Alcotest.failf "chain slice rejected: %s" msg

let test_snapshot_plus_journal_recovery () =
  in_scratch "snap-journal" @@ fun dir ->
  let jp = Filename.concat dir "j" and sp = Filename.concat dir "s" in
  let d1, _ =
    BC.Durable.attach ~journal:jp ~snapshot:sp ~sync:J.Flush_only (mk ())
  in
  let first = serve_durable ~epochs:2 d1 in
  BC.Durable.snapshot d1;
  Alcotest.(check int) "rotation empties the journal" 0
    (List.length (J.recover jp).J.records);
  let second = serve_durable ~epochs:2 d1 in
  BC.Durable.close d1;
  (* Restore from the snapshot; only the post-rotation epochs replay. *)
  let snap =
    let ic = open_in_bin sp in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Bytes.of_string s
  in
  let b2 =
    BC.load ~prng:(Prng.of_int 1) ~batch_size:16 ~refill_threshold:3 snap
  in
  Alcotest.(check int) "snapshot covers the first two" 2 (BC.next_seq b2);
  let d2, rs = BC.Durable.attach ~journal:jp ~snapshot:sp ~sync:J.Flush_only b2 in
  Alcotest.(check int) "journal window replays" 2
    (List.length rs.BC.Durable.replayed);
  Alcotest.(check int) "recovered to the true head" 4 (BC.next_seq b2);
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "window digests match" true
        (Beacon_hash.equal a.BC.digest b.BC.digest))
    second rs.BC.Durable.replayed;
  ignore first;
  BC.Durable.close d2

(* The crash window between snapshot rename and journal reset: the
   snapshot already covers every journal record. Replay must skip them
   (no double-count, no link failure) while still recovering their
   dedup entries. *)
let test_snapshot_newer_than_journal_tail () =
  in_scratch "overlap" @@ fun dir ->
  let jp = Filename.concat dir "j" and sp = Filename.concat dir "s" in
  let b1 = mk () in
  let d1, _ = BC.Durable.attach ~journal:jp ~snapshot:sp ~sync:J.Flush_only b1 in
  let served = serve_durable ~epochs:3 d1 in
  (* Write the snapshot bytes WITHOUT rotating the journal — exactly
     the state a crash between rename and reset leaves behind. *)
  J.write_file_atomic sp (BC.save b1);
  BC.Durable.close d1;
  let snap =
    let ic = open_in_bin sp in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Bytes.of_string s
  in
  let b2 =
    BC.load ~prng:(Prng.of_int 1) ~batch_size:16 ~refill_threshold:3 snap
  in
  let d2, rs = BC.Durable.attach ~journal:jp ~snapshot:sp ~sync:J.Flush_only b2 in
  Alcotest.(check int) "every record skipped" 0
    (List.length rs.BC.Durable.replayed);
  Alcotest.(check bool) "dedup entries still recovered" true
    (rs.BC.Durable.deduped > 0);
  Alcotest.(check int) "position from the snapshot" 3 (BC.next_seq b2);
  (* The chain continues exactly where the snapshot says. *)
  let e = List.hd (serve_durable ~epochs:1 d2) in
  Alcotest.(check int) "next close takes seq 3" 3 e.BC.seq;
  Alcotest.(check bool) "and links to the snapshot head" true
    (Beacon_hash.equal e.BC.prev (List.nth served 2).BC.digest);
  BC.Durable.close d2

let test_duplicate_request_id_replays_bit_identical () =
  in_scratch "dedup" @@ fun dir ->
  let jp = Filename.concat dir "j" in
  let d1, _ = BC.Durable.attach ~journal:jp ~sync:J.Flush_only (mk ()) in
  let got = Hashtbl.create 4 in
  List.iter
    (fun (id, nbits) ->
      match
        BC.Durable.request d1 ~id ~nbits
          ~callback:(fun f -> Hashtbl.replace got f.BC.request_id f)
          ()
      with
      | Ok id' -> Alcotest.(check int) "explicit id echoed" id id'
      | Error r -> Alcotest.failf "rejected: %s" (BC.reject_name r))
    [ (10, 9); (11, 21) ];
  let e = ok_or_fail (BC.Durable.close_epoch d1) in
  BC.Durable.close d1;
  (* Restart: the same ids must not trigger a fresh draw — the original
     fulfillment comes back bit for bit, stamped with the original
     epoch, even though the new incarnation's pool randomness
     differs. *)
  let d2, _ = BC.Durable.attach ~journal:jp ~sync:J.Flush_only (mk ()) in
  List.iter
    (fun (id, _) ->
      let replayed = ref None in
      (match
         BC.Durable.request d2 ~id ~nbits:5 (* recorded nbits wins *)
           ~callback:(fun f -> replayed := Some f)
           ()
       with
      | Ok id' -> Alcotest.(check int) "replay echoes the id" id id'
      | Error r -> Alcotest.failf "replay rejected: %s" (BC.reject_name r));
      match (!replayed, Hashtbl.find_opt got id) with
      | Some f, Some orig ->
          Alcotest.(check bool)
            (Printf.sprintf "id %d replays bit-identical" id)
            true
            (f.BC.bits = orig.BC.bits);
          Alcotest.(check int) "original epoch stamp" orig.BC.epoch f.BC.epoch;
          Alcotest.(check int) "original width"
            (Array.length orig.BC.bits)
            (Array.length f.BC.bits)
      | _ -> Alcotest.failf "id %d did not replay synchronously" id)
    [ (10, 9); (11, 21) ];
  (* Replay lookups see the same window; unknown ids miss. *)
  Alcotest.(check bool) "window replay hits" true
    (BC.Durable.replay d2 ~id:11 <> None);
  Alcotest.(check bool) "unknown id misses" true
    (BC.Durable.replay d2 ~id:999 = None);
  (* A genuinely new id queues for the next epoch instead. *)
  (match BC.Durable.request d2 ~id:999 ~callback:ignore () with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "new id rejected: %s" (BC.reject_name r));
  Alcotest.(check int) "new id is pending, not replayed" 1
    (BC.pending (BC.Durable.beacon d2));
  let e2 = ok_or_fail (BC.Durable.close_epoch d2) in
  Alcotest.(check int) "chain resumed past the replayed epoch" (e.BC.seq + 1)
    e2.BC.seq;
  BC.Durable.close d2

(* Recovery onto a pool that trips Safe_mode while paying the replay
   debt: the beacon must come back Halted — vending after recovery
   would reuse coin positions the published chain already exposed. *)
let test_recovery_halts_on_safe_mode () =
  in_scratch "safe-mode" @@ fun dir ->
  let jp = Filename.concat dir "j" in
  let d1, _ = BC.Durable.attach ~journal:jp ~sync:J.Flush_only (mk ()) in
  ignore (serve_durable ~epochs:4 d1);
  BC.Durable.close d1;
  (* The restarted node's pool has more liars than the fault bound and
     a hair-trigger active sentinel: the debt draws push it over. *)
  let liars = [ 0; 1; 2 ] in
  let expose_behavior _refill i =
    if List.mem i liars then CE.Send (F.of_int 0xBEEF) else CE.Honest
  in
  let pool =
    mk_pool ~expose_behavior
      ~sentinel:(Some (Sentinel.active ~threshold:1 ()))
      1
  in
  let b2 = BC.create ~pool () in
  let d2, rs = BC.Durable.attach ~journal:jp ~sync:J.Flush_only b2 in
  Alcotest.(check int) "chain state still recovered" 4 (BC.next_seq b2);
  Alcotest.(check int) "all epochs replayed" 4
    (List.length rs.BC.Durable.replayed);
  (match BC.state b2 with
  | BC.Halted _ -> ()
  | s -> Alcotest.failf "expected Halted, got %s" (BC.state_label s));
  (match BC.Durable.close_epoch d2 with
  | Ok _ -> Alcotest.fail "halted beacon vended an epoch"
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "refusal is diagnostic: %s" msg)
        true
        (String.length msg > 0));
  BC.Durable.close d2

(* Recovery onto a pool that starves mid-debt: the beacon degrades,
   close_epoch refuses while the debt is outstanding, and the refusal
   names the reason. Starvation depends on which Coin-Gen leaders the
   seed draws, so scan seeds for one that starves during attach —
   every run is deterministic given its seed. *)
let test_recovery_degrades_on_starvation () =
  in_scratch "starved" @@ fun dir ->
  let jp = Filename.concat dir "j" in
  let d1, _ = BC.Durable.attach ~journal:jp ~sync:J.Flush_only (mk ()) in
  ignore (serve_durable ~epochs:8 ~requests:1 d1);
  BC.Durable.close d1;
  let adversary _refill =
    CG.faulty_with ~as_gradecast_dealer:Gradecast.Dealer_silent
      ~as_ba:(Phase_king.Fixed false)
      (Net.Faults.make ~n ~faulty:[ 0; 1 ])
  in
  let try_seed seed =
    let pool =
      mk_pool ~adversary ~max_ba_iterations:1 ~max_refill_attempts:1 seed
    in
    let b2 = BC.create ~pool () in
    let d2, _ = BC.Durable.attach ~journal:jp ~sync:J.Flush_only b2 in
    match BC.state b2 with
    | BC.Degraded _ -> Some (b2, d2)
    | _ ->
        BC.Durable.close d2;
        None
  in
  let rec scan seed =
    if seed > 256 then
      Alcotest.fail "no seed starved the 8-epoch replay debt (256 tried)"
    else match try_seed seed with Some hit -> hit | None -> scan (seed + 1)
  in
  let b2, d2 = scan 0 in
  Alcotest.(check int) "chain state recovered before the debt" 8
    (BC.next_seq b2);
  (match BC.Durable.close_epoch d2 with
  | Ok _ -> Alcotest.fail "vended with replay debt outstanding"
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "refusal names the debt: %s" msg)
        true
        (let needle = "replay debt" in
         let nl = String.length needle and hl = String.length msg in
         let rec go i =
           i + nl <= hl && (String.sub msg i nl = needle || go (i + 1))
         in
         go 0));
  BC.Durable.close d2

(* --- the crash-point harness ---------------------------------------- *)

let test_harness_sweep () =
  in_scratch "harness" @@ fun dir ->
  let seed = 42 in
  let mk_fresh () = BC.create ~key:"harness-key" ~pool:(mk_pool seed) () in
  let mk_restore bytes =
    BC.load ~key:"harness-key" ~prng:(Prng.of_int seed) ~batch_size:16
      ~refill_threshold:3 bytes
  in
  match
    BC.Harness.run ~epochs:3 ~requests:2 ~snapshot_every:2 ~stride:7
      ~mk_fresh ~mk_restore ~dir ()
  with
  | Error msg -> Alcotest.failf "harness found a violation: %s" msg
  | Ok r ->
      Alcotest.(check bool)
        (Printf.sprintf "swept real crash points (%d)" r.BC.Harness.points)
        true
        (r.BC.Harness.points > 0);
      Alcotest.(check bool)
        (Printf.sprintf "crashes actually fired (%d)" r.BC.Harness.crashes)
        true
        (r.BC.Harness.crashes > 0);
      Alcotest.(check int) "every run converged to the full chain" 3
        r.BC.Harness.epochs

let suite =
  [
    Alcotest.test_case "journal roundtrip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal open_append continues" `Quick
      test_journal_open_append_continues;
    Alcotest.test_case "journal torn tail at every offset" `Quick
      test_journal_torn_tail_every_offset;
    Alcotest.test_case "journal mid-corruption is fatal" `Quick
      test_journal_mid_corruption_fatal;
    Alcotest.test_case "crash-point counting and budget" `Quick
      test_crash_point_budget;
    Alcotest.test_case "write_file_atomic" `Quick test_write_file_atomic;
    Alcotest.test_case "attach on an empty journal" `Quick
      test_empty_journal_attach;
    Alcotest.test_case "journal-only recovery" `Quick
      test_journal_only_recovery;
    Alcotest.test_case "snapshot + journal recovery" `Quick
      test_snapshot_plus_journal_recovery;
    Alcotest.test_case "snapshot newer than journal tail" `Quick
      test_snapshot_newer_than_journal_tail;
    Alcotest.test_case "duplicate id replays bit-identical" `Quick
      test_duplicate_request_id_replays_bit_identical;
    Alcotest.test_case "recovery halts on safe mode" `Quick
      test_recovery_halts_on_safe_mode;
    Alcotest.test_case "recovery degrades on starvation" `Quick
      test_recovery_degrades_on_starvation;
    Alcotest.test_case "crash-point harness sweep" `Quick test_harness_sweep;
  ]
