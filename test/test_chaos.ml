(* Differential chaos suite (DESIGN.md section 16): seeded campaigns of
   real peer failures — SIGKILLed player processes, stalled peers,
   truncated frames — inflicted on the byte backends under supervision
   must behave exactly like the equivalent simulated crash schedule on
   the sim oracle:

   - at most [t] kills / permanent stalls: byte-identical transcript
     (coin values, sentinel evidence, fault tallies, metrics);
   - a stall shorter than the supervision budget: recovered by
     retry-and-backoff, byte-identical to the {e clean} run;
   - a truncated stream: crash-equivalent coin values and tallies, plus
     Undecodable evidence the simulator cannot produce;
   - more than [t] real failures: [Transport.Safe_mode], deterministic,
     never a hang and never an uncaught [Backend_failure].

   Process-lifetime constraint: OCaml forbids [Unix.fork] once any
   domain has ever been spawned, so this file exports two suites —
   [socket_suite], registered before test_transport's domains cases,
   and [domains_suite], registered after. Keep that split when adding
   cases. *)

module F = Gf2k.GF16
module SC = Sealed_coin.Make (F)
module CE = Coin_expose.Make (F)
module P = Pool.Make (F)

let backend_enabled b =
  match Sys.getenv_opt "DPRBG_TRANSPORT_BACKENDS" with
  | None -> true
  | Some s ->
      s |> String.split_on_char ','
      |> List.exists (fun x -> String.trim x = Transport.backend_name b)

let skip_disabled b =
  print_endline
    ("[skip] " ^ Transport.backend_name b
   ^ " disabled by DPRBG_TRANSPORT_BACKENDS")

(* ---------------------- supervision policy ----------------------- *)

(* Mirrors the `dprbg chaos` defaults: 0.25s per-attempt deadline, two
   retries at 2x backoff, so the total per-peer budget is 1.75s. A
   0.4s injected stall sits under the budget (recovered); anything at
   or over 1.75s is permanent (declared dead). *)
let deadline = 0.25
let retries = 2
let backoff = 2.0

let budget =
  Transport.Supervisor.total_budget
    (Transport.Supervisor.make ~deadline ~retries ~backoff ())

let recovered_stall = 0.4

(* ------------------------- transcripts --------------------------- *)

let render_values buf label values =
  Buffer.add_string buf label;
  Buffer.add_char buf ':';
  Array.iter
    (function
      | None -> Buffer.add_string buf "-,"
      | Some v ->
          Buffer.add_string buf (F.to_string v);
          Buffer.add_char buf ',')
    values;
  Buffer.add_char buf '\n'

let render_evidence buf ledger =
  Array.iteri
    (fun p row ->
      if Array.exists (fun c -> c > 0) row then
        Buffer.add_string buf
          (Printf.sprintf "evidence:p%d:%s\n" p
             (String.concat ","
                (List.map string_of_int (Array.to_list row)))))
    (Sentinel.Ledger.dump ledger)

(* M dealer coins sealed from one PRNG, each exposed to all players:
   the lightest campaign whose every byte crosses the backend, sized
   freely (the (7, 2) and (16, 5) matrix points have no Coin-Gen
   floor). *)
let expose_body ~n ~t ~m ~seed buf =
  let g = Prng.of_int seed in
  let ledger = Sentinel.Ledger.create ~config:Sentinel.passive ~n () in
  Sentinel.with_ledger ledger (fun () ->
      let coins = List.init m (fun _ -> SC.dealer_coin g ~n ~t) in
      List.iteri
        (fun k coin ->
          render_values buf (Printf.sprintf "coin%d" k) (CE.run coin))
        coins);
  render_evidence buf ledger

(* The full Fig. 5 pipeline — pool draws forcing a Coin-Gen refill
   (VSS, grade-cast, phase-king BA) — under chaos. n = 13 is the
   smallest Coin-Gen-legal size for t = 2. *)
let pool_body ~n ~t ~draws ~seed buf =
  let pool =
    P.create ~prng:(Prng.of_int seed) ~n ~t ~batch_size:8 ~refill_threshold:3
      ~initial_seed:4 ()
  in
  (match List.init draws (fun _ -> P.draw_kary pool) with
  | values ->
      List.iteri
        (fun k v ->
          Buffer.add_string buf (Printf.sprintf "draw%d:%s\n" k (F.to_string v)))
        values
  | exception P.Starved why ->
      Buffer.add_string buf (Printf.sprintf "starved:%s\n" why));
  match P.ledger pool with
  | None -> ()
  | Some ledger -> render_evidence buf ledger

(* One measured run. [crashes] is the static sim schedule (the oracle's
   stand-in for the real failures); [events] + [real] runs the chaos
   schedule under supervision instead. Returns the transcript — draws,
   evidence, plan fault tally, metrics — and whether safe mode fired. *)
let transcript ~seed ~fault_bound ~events ~crashes ~real body =
  let buf = Buffer.create 512 in
  let plan = Transport.Plan.make ~crashes ~seed:((seed * 17) + 3) () in
  let safe = ref None in
  let (), metrics =
    Metrics.with_counting (fun () ->
        try
          if real then
            Transport.with_chaos events (fun () ->
                Transport.with_supervision ~deadline ~retries ~backoff
                  ~fault_bound (fun () -> Transport.with_plan plan (body buf)))
          else Transport.with_plan plan (body buf)
        with
        | Transport.Safe_mode msg -> safe := Some ("transport: " ^ msg)
        | P.Safe_mode msg -> safe := Some ("pool: " ^ msg))
  in
  Buffer.add_string buf
    (Fmt.str "plan:%a\n" Transport.Plan.pp_stats (Transport.Plan.stats plan));
  Buffer.add_string buf (Fmt.str "metrics:%a\n" Metrics.pp metrics);
  (Buffer.contents buf, !safe)

let is_evidence l = String.length l >= 9 && String.sub l 0 9 = "evidence:"

let non_evidence_lines transcript =
  List.filter (fun l -> not (is_evidence l)) (String.split_on_char '\n' transcript)

(* An Undecodable count (last column, [Sentinel.all_kinds] order) on
   some player's evidence row — what a truncation must leave behind. *)
let has_undecodable transcript =
  List.exists
    (fun l ->
      is_evidence l
      &&
      match String.rindex_opt l ',' with
      | Some i -> String.sub l (i + 1) (String.length l - i - 1) <> "0"
      | None -> false)
    (String.split_on_char '\n' transcript)

(* ----------------------- the differential ----------------------- *)

(* Run [body] under the chaos schedule on [backend] and under the
   equivalent static crash schedule on sim, and pin them to each other.
   The sim run with the oracle's exact crash configuration is executed
   once first, unmeasured, so shared memo tables (lazy field tables,
   subset reconstruction weights) are warm for both compared runs. *)
let check_differential ~name ~backend ~seed ~fault_bound ~events body =
  let sim = Transport.Chaos.sim_crashes ~budget events in
  let fatal = List.length sim in
  Alcotest.(check bool)
    (name ^ ": schedule within the fault bound")
    true (fatal <= fault_bound);
  ignore (transcript ~seed ~fault_bound ~events:[] ~crashes:sim ~real:false body);
  let oracle, oracle_safe =
    transcript ~seed ~fault_bound ~events:[] ~crashes:sim ~real:false body
  in
  let real, real_safe =
    Transport.with_backend backend (fun () ->
        transcript ~seed ~fault_bound ~events ~crashes:[] ~real:true body)
  in
  Alcotest.(check bool) (name ^ ": oracle stays live") true (oracle_safe = None);
  Alcotest.(check bool) (name ^ ": real run stays live") true (real_safe = None);
  let truncates =
    List.exists
      (fun (e : Transport.Chaos.event) -> e.action = Transport.Chaos.Truncate)
      events
  in
  if not truncates then
    Alcotest.(check string)
      (Printf.sprintf "%s: %s == sim" name (Transport.backend_name backend))
      oracle real
  else begin
    (* Truncation: coin stream and tallies match the crash-equivalent
       oracle; the evidence rows differ only by the Undecodable marks
       the simulator cannot produce. *)
    Alcotest.(check (list string))
      (Printf.sprintf "%s: %s == sim modulo evidence" name
         (Transport.backend_name backend))
      (non_evidence_lines oracle) (non_evidence_lines real);
    Alcotest.(check bool)
      (name ^ ": truncation attributed as Undecodable")
      true (has_undecodable real)
  end

let kill_schedule ~seed ~n ~kills ?(stalls = 0) ?(truncates = 0) () =
  Transport.Chaos.schedule ~seed ~n ~kills ~stalls ~truncates
    ~stall_duration:recovered_stall ~first_round:2 ~last_round:5 ()

(* The acceptance matrix: (7, 2) and (16, 5), t kills each, two seeds. *)
let differential_kills backend () =
  if not (backend_enabled backend) then skip_disabled backend
  else
    List.iter
      (fun (n, t) ->
        List.iter
          (fun seed ->
            let events = kill_schedule ~seed ~n ~kills:t () in
            check_differential
              ~name:(Printf.sprintf "kills-n%d-t%d-s%d" n t seed)
              ~backend ~seed ~fault_bound:t ~events
              (fun buf () -> expose_body ~n ~t ~m:6 ~seed buf))
          [ 21; 22 ])
      [ (7, 2); (16, 5) ]

(* A sub-budget stall has no crash counterpart: retry-and-backoff
   recovers the peer and the transcript is byte-identical to the clean
   run (the empty sim schedule). *)
let differential_recovered_stall backend () =
  if not (backend_enabled backend) then skip_disabled backend
  else begin
    let n = 7 and t = 2 and seed = 31 in
    let events = kill_schedule ~seed ~n ~kills:0 ~stalls:1 () in
    Alcotest.(check int)
      "a 0.4s stall under the 1.75s budget has no sim crash" 0
      (List.length (Transport.Chaos.sim_crashes ~budget events));
    check_differential ~name:"recovered-stall-n7-t2" ~backend ~seed
      ~fault_bound:t ~events
      (fun buf () -> expose_body ~n ~t ~m:6 ~seed buf)
  end

let differential_truncate backend () =
  if not (backend_enabled backend) then skip_disabled backend
  else begin
    let n = 7 and t = 2 and seed = 41 in
    let events = kill_schedule ~seed ~n ~kills:1 ~truncates:1 () in
    check_differential ~name:"truncate-n7-t2" ~backend ~seed ~fault_bound:t
      ~events
      (fun buf () -> expose_body ~n ~t ~m:6 ~seed buf)
  end

(* Chaos through the whole pool pipeline: VSS dealing, grade-cast and
   phase-king BA all cross the backend while peers really die. *)
let differential_pool backend () =
  if not (backend_enabled backend) then skip_disabled backend
  else begin
    let n = 13 and t = 2 and seed = 51 in
    let events = kill_schedule ~seed ~n ~kills:t () in
    check_differential ~name:"pool-n13-t2" ~backend ~seed ~fault_bound:t
      ~events
      (fun buf () -> pool_body ~n ~t ~draws:3 ~seed buf)
  end

(* More real failures than the bound: Safe_mode, deterministically — on
   every run — and never a hang or an uncaught Backend_failure. *)
let over_the_bound backend () =
  if not (backend_enabled backend) then skip_disabled backend
  else begin
    let n = 7 and t = 2 and seed = 61 in
    let events = kill_schedule ~seed ~n ~kills:(t + 1) () in
    Alcotest.(check bool)
      "t+1 kills exceed the bound" true
      (List.length (Transport.Chaos.sim_crashes ~budget events) > t);
    for run = 1 to 2 do
      let _, safe =
        Transport.with_backend backend (fun () ->
            transcript ~seed ~fault_bound:t ~events ~crashes:[] ~real:true
              (fun buf () -> expose_body ~n ~t ~m:6 ~seed buf))
      in
      match safe with
      | Some why ->
          Alcotest.(check bool)
            (Printf.sprintf "run %d names the fault bound" run)
            true
            (String.length why > 0)
      | None ->
          Alcotest.failf "run %d: %d real kills > t=%d but no safe mode" run
            (t + 1) t
    done
  end

(* ----------------------- schedule pinning ------------------------ *)

let test_schedule_deterministic () =
  let mk seed =
    Transport.Chaos.schedule ~seed ~n:16 ~kills:2 ~stalls:2 ~truncates:1
      ~stall_duration:0.1 ~first_round:2 ~last_round:5 ()
  in
  Alcotest.(check bool) "same seed, same schedule" true (mk 7 = mk 7);
  let events = mk 7 in
  Alcotest.(check int) "five distinct victims" 5
    (List.length
       (List.sort_uniq compare
          (List.map (fun (e : Transport.Chaos.event) -> e.player) events)));
  List.iter
    (fun (e : Transport.Chaos.event) ->
      Alcotest.(check bool) "round in [2, 5]" true (e.round >= 2 && e.round <= 5))
    events

let test_sim_crash_classification () =
  let ev round player action = { Transport.Chaos.round; player; action } in
  let events =
    [
      ev 2 0 Transport.Chaos.Kill;
      ev 3 1 (Transport.Chaos.Stall 0.1);
      (* recovered: no counterpart *)
      ev 3 2 (Transport.Chaos.Stall 99.0);
      (* permanent: crash *)
      ev 4 3 Transport.Chaos.Truncate;
      (* the garbled peer dies: crash *)
    ]
  in
  Alcotest.(check (list (triple int int (option int))))
    "kill, permanent stall and truncate are crashes; recovered stall is not"
    [ (0, 2, None); (2, 3, None); (3, 4, None) ]
    (Transport.Chaos.sim_crashes ~budget:1.75 events)

(* --------------------- timeout strictness ------------------------ *)

let test_timeout_override_strict () =
  List.iter
    (fun bad ->
      Alcotest.check_raises
        (Printf.sprintf "override %f rejected" bad)
        (Invalid_argument
           "Transport.set_timeout_override: timeout must be positive")
        (fun () -> Transport.set_timeout_override (Some bad)))
    [ 0.0; -3.0; Float.nan ];
  Transport.set_timeout_override (Some 5.0);
  Transport.set_timeout_override None

(* A malformed DPRBG_TRANSPORT_TIMEOUT must abort the session loudly at
   group creation, never fall back to the default silently. The failure
   fires before any fork, so this is cheap; it lives in the socket
   suite because only socket groups consult the timeout. *)
let test_timeout_env_strict () =
  if not (backend_enabled Transport.Socket) then skip_disabled Transport.Socket
  else begin
    Unix.putenv "DPRBG_TRANSPORT_TIMEOUT" "soon";
    let loud =
      match
        Transport.with_backend Transport.Socket (fun () ->
            expose_body ~n:7 ~t:2 ~m:1 ~seed:3 (Buffer.create 64))
      with
      | () -> false
      | exception Transport.Backend_failure msg ->
          (* The message must name the variable so the typo is findable. *)
          let contains hay needle =
            let h = String.length hay and n = String.length needle in
            let rec go i =
              i + n <= h && (String.sub hay i n = needle || go (i + 1))
            in
            go 0
          in
          contains msg "DPRBG_TRANSPORT_TIMEOUT"
    in
    Unix.putenv "DPRBG_TRANSPORT_TIMEOUT" "60";
    Alcotest.(check bool) "malformed env timeout is a loud failure" true loud
  end

(* ------------------------ zombie reaping ------------------------- *)

(* Shutdown must reap every child — SIGKILLed ones included — and
   record each exit status: no zombies, no swallowed statuses. *)
let test_socket_reaping () =
  if not (backend_enabled Transport.Socket) then skip_disabled Transport.Socket
  else begin
    let s = Transport_socket.create ~timeout:5.0 ~n:3 in
    Transport_socket.kill_peer s 1;
    Transport_socket.shutdown s;
    (match Transport_socket.exit_status s 1 with
    | Some (Unix.WSIGNALED sg) ->
        Alcotest.(check int) "killed child reaped with SIGKILL" Sys.sigkill sg
    | Some st ->
        Alcotest.failf "killed child recorded as %S"
          (Transport_socket.pp_status st)
    | None -> Alcotest.fail "killed child's exit status not recorded");
    List.iter
      (fun i ->
        match Transport_socket.exit_status s i with
        | Some (Unix.WEXITED 0) -> ()
        | Some st ->
            Alcotest.failf "healthy child %d recorded as %S" i
              (Transport_socket.pp_status st)
        | None -> Alcotest.failf "healthy child %d not reaped" i)
      [ 0; 2 ]
  end

(* A SIGSTOPped (wedged) child must not survive shutdown either:
   SIGTERM is ignored while stopped, so the escalation to SIGKILL is
   what guarantees the reap terminates. *)
let test_socket_reaps_stopped_child () =
  if not (backend_enabled Transport.Socket) then skip_disabled Transport.Socket
  else begin
    let s = Transport_socket.create ~timeout:5.0 ~n:2 in
    Transport_socket.stall_peer s 0;
    Transport_socket.shutdown s;
    match Transport_socket.exit_status s 0 with
    | Some (Unix.WSIGNALED _) -> ()
    | Some (Unix.WEXITED _) ->
        (* The Stop frame may still win the race if the SIGSTOP had not
           landed: either way the child is gone, which is the contract. *)
        ()
    | Some st ->
        Alcotest.failf "stopped child recorded as %S"
          (Transport_socket.pp_status st)
    | None -> Alcotest.fail "stopped child not reaped"
  end

(* --------------------------- suites ------------------------------ *)

(* Registered before test_transport (whose later cases spawn domains):
   fork would be forbidden afterwards. *)
let socket_suite =
  [
    Alcotest.test_case "chaos schedule is deterministic" `Quick
      test_schedule_deterministic;
    Alcotest.test_case "sim-crash classification" `Quick
      test_sim_crash_classification;
    Alcotest.test_case "timeout override rejects bad values" `Quick
      test_timeout_override_strict;
    Alcotest.test_case "malformed timeout env is loud" `Quick
      test_timeout_env_strict;
    Alcotest.test_case "shutdown reaps a SIGKILLed child" `Quick
      test_socket_reaping;
    Alcotest.test_case "shutdown reaps a stopped child" `Quick
      test_socket_reaps_stopped_child;
    Alcotest.test_case "differential: kills (socket)" `Slow
      (differential_kills Transport.Socket);
    Alcotest.test_case "differential: recovered stall (socket)" `Slow
      (differential_recovered_stall Transport.Socket);
    Alcotest.test_case "differential: truncate (socket)" `Slow
      (differential_truncate Transport.Socket);
    Alcotest.test_case "differential: pool pipeline (socket)" `Slow
      (differential_pool Transport.Socket);
    Alcotest.test_case "over the bound: Safe_mode (socket)" `Slow
      (over_the_bound Transport.Socket);
  ]

let domains_suite =
  [
    Alcotest.test_case "differential: kills (domains)" `Slow
      (differential_kills Transport.Domains);
    Alcotest.test_case "differential: recovered stall (domains)" `Slow
      (differential_recovered_stall Transport.Domains);
    Alcotest.test_case "differential: truncate (domains)" `Slow
      (differential_truncate Transport.Domains);
    Alcotest.test_case "differential: pool pipeline (domains)" `Slow
      (differential_pool Transport.Domains);
    Alcotest.test_case "over the bound: Safe_mode (domains)" `Slow
      (over_the_bound Transport.Domains);
  ]
