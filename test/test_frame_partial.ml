(* Partial-read robustness (ISSUE 7, satellite 3): a frame arriving in
   arbitrarily small pieces — byte at a time, split at every boundary,
   cut off at every offset — must come out of the decoder and the
   socket read path as either the exact original bytes, a typed
   {!Frame.Error}, or [Transport_socket.Closed]. Never a bare
   [Invalid_argument], never an out-of-bounds access, never garbage
   accepted as a frame.

   The socket-path cases exercise [Transport_socket.really_read]'s
   resumability without forking or threads: the reader end of a
   socketpair carries a short OS receive deadline, and each missed
   deadline's [on_stall] callback feeds the next chunk — so every read
   attempt observes a genuine short count. *)

let sample_frames =
  [
    Frame.encode Frame.Msg ~src:0 ~dst:1 ~uid:0 ~payload:Bytes.empty;
    Frame.encode Frame.Msg ~src:3 ~dst:2 ~uid:77 ~payload:(Bytes.of_string "xyz");
    Frame.encode Frame.Round ~src:1 ~dst:1 ~uid:0 ~payload:Bytes.empty;
    Frame.encode Frame.End_of_round ~src:2 ~dst:2 ~uid:0 ~payload:Bytes.empty;
    Frame.encode Frame.Msg ~src:9 ~dst:4 ~uid:123456
      ~payload:(Bytes.init 29 (fun i -> Char.chr (i * 7 mod 256)));
  ]

(* ------------------------ decoder totality ----------------------- *)

(* Every strict prefix of a valid frame is Truncated — and only that. *)
let test_decode_prefixes () =
  List.iter
    (fun frame ->
      for k = 0 to Bytes.length frame - 1 do
        match Frame.decode (Bytes.sub frame 0 k) with
        | _ -> Alcotest.failf "prefix of %d bytes decoded" k
        | exception Frame.Error (Frame.Truncated _) -> ()
        | exception e ->
            Alcotest.failf "prefix of %d bytes: unexpected %s" k
              (Printexc.to_string e)
      done)
    sample_frames

let test_decode_trailing () =
  List.iter
    (fun frame ->
      let padded = Bytes.cat frame (Bytes.of_string "!") in
      match Frame.decode padded with
      | _ -> Alcotest.fail "trailing byte accepted"
      | exception Frame.Error (Frame.Trailing_bytes 1) -> ()
      | exception e ->
          Alcotest.failf "trailing byte: unexpected %s" (Printexc.to_string e))
    sample_frames

(* Any single-byte corruption decodes to the original-or-corrupt header
   or a typed error; nothing else can escape, whatever the byte. *)
let prop_decode_mutation =
  QCheck.Test.make ~count:500 ~name:"mutated frame: typed error or decode"
    QCheck.(triple (int_range 0 4) small_nat (int_range 0 255))
    (fun (which, pos, byte) ->
      let frame = Bytes.copy (List.nth sample_frames which) in
      let pos = pos mod Bytes.length frame in
      Bytes.set frame pos (Char.chr byte);
      match Frame.decode frame with
      | _, _ -> true
      | exception Frame.Error _ -> true
      | exception _ -> false)

(* Random byte strings never crash the decoder either. *)
let prop_decode_garbage =
  QCheck.Test.make ~count:500 ~name:"garbage bytes: typed error or decode"
    QCheck.(pair int (int_range 0 64))
    (fun (seed, len) ->
      let g = Prng.of_int seed in
      let junk = Bytes.init len (fun _ -> Char.chr (Prng.int g 256)) in
      match Frame.decode junk with
      | _, _ -> true
      | exception Frame.Error _ -> true
      | exception _ -> false)

(* --------------------- socket read resumability ------------------ *)

(* Feed [chunks] through a socketpair into one [really_read] of the
   total length: the first chunk is pre-written, each missed deadline's
   [on_stall] writes the next, so the read provably resumes across
   short counts. Returns the reassembled bytes. *)
let read_in_chunks chunks =
  let total = List.fold_left (fun a c -> a + Bytes.length c) 0 chunks in
  let r, w = Unix.(socketpair PF_UNIX SOCK_STREAM 0) in
  Fun.protect ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.setsockopt_float r Unix.SO_RCVTIMEO 0.02;
  let pending = ref chunks in
  let feed () =
    match !pending with
    | [] -> ()
    | c :: rest ->
        pending := rest;
        if Bytes.length c > 0 then
          assert (Unix.write w c 0 (Bytes.length c) = Bytes.length c)
  in
  feed ();
  let buf = Bytes.create total in
  Transport_socket.really_read ~deadline:0.02 ~retries:(List.length chunks + 2)
    ~on_stall:(fun ~attempt:_ -> feed ())
    r buf 0 total;
  buf

let split_at k b =
  (Bytes.sub b 0 k, Bytes.sub b k (Bytes.length b - k))

(* Every two-way split of every sample frame reassembles exactly. *)
let test_read_every_split () =
  List.iter
    (fun frame ->
      for k = 0 to Bytes.length frame do
        let a, b = split_at k frame in
        Alcotest.(check bytes)
          (Printf.sprintf "split at %d" k)
          frame
          (read_in_chunks [ a; b ])
      done)
    sample_frames

let test_read_byte_at_a_time () =
  let frame = List.nth sample_frames 4 in
  let chunks =
    List.init (Bytes.length frame) (fun i -> Bytes.sub frame i 1)
  in
  Alcotest.(check bytes) "byte at a time" frame (read_in_chunks chunks)

(* EOF at every offset: [really_read] raises [Closed], never returns a
   torn buffer and never hangs. *)
let test_read_eof_every_offset () =
  let frame = List.nth sample_frames 1 in
  for k = 0 to Bytes.length frame - 1 do
    let r, w = Unix.(socketpair PF_UNIX SOCK_STREAM 0) in
    Fun.protect ~finally:(fun () ->
        try Unix.close r with Unix.Unix_error _ -> ())
    @@ fun () ->
    if k > 0 then assert (Unix.write w frame 0 k = k);
    Unix.close w;
    let buf = Bytes.create (Bytes.length frame) in
    match Transport_socket.really_read r buf 0 (Bytes.length frame) with
    | () -> Alcotest.failf "EOF after %d bytes read as a full frame" k
    | exception Transport_socket.Closed -> ()
    | exception e ->
        Alcotest.failf "EOF after %d bytes: unexpected %s" k
          (Printexc.to_string e)
  done

(* [read_frame] over the same dribbling stream: the parsed frame equals
   a clean decode, and junk on the stream is a typed Frame.Error. *)
let test_read_frame_dribbled () =
  let frame = List.nth sample_frames 4 in
  let r, w = Unix.(socketpair PF_UNIX SOCK_STREAM 0) in
  Fun.protect ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.setsockopt_float r Unix.SO_RCVTIMEO 0.02;
  let pos = ref 0 in
  let feed () =
    if !pos < Bytes.length frame then begin
      assert (Unix.write w frame !pos 1 = 1);
      incr pos
    end
  in
  feed ();
  let hdr, got =
    Transport_socket.read_frame ~deadline:0.02
      ~retries:(Bytes.length frame + 2)
      ~on_stall:(fun ~attempt:_ -> feed ())
      r
  in
  let want_hdr, _ = Frame.decode frame in
  Alcotest.(check bool) "header matches clean decode" true (hdr = want_hdr);
  Alcotest.(check bytes) "frame bytes intact" frame got

let test_read_frame_junk_header () =
  let r, w = Unix.(socketpair PF_UNIX SOCK_STREAM 0) in
  Fun.protect ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
  @@ fun () ->
  let junk = Bytes.make Frame.header_size '\xFF' in
  assert (Unix.write w junk 0 Frame.header_size = Frame.header_size);
  match Transport_socket.read_frame r with
  | _ -> Alcotest.fail "junk header parsed as a frame"
  | exception Frame.Error _ -> ()
  | exception e ->
      Alcotest.failf "junk header: unexpected %s" (Printexc.to_string e)

let suite =
  [
    Alcotest.test_case "decode: every strict prefix is Truncated" `Quick
      test_decode_prefixes;
    Alcotest.test_case "decode: trailing bytes rejected" `Quick
      test_decode_trailing;
    QCheck_alcotest.to_alcotest prop_decode_mutation;
    QCheck_alcotest.to_alcotest prop_decode_garbage;
    Alcotest.test_case "really_read: every split reassembles" `Quick
      test_read_every_split;
    Alcotest.test_case "really_read: byte at a time" `Quick
      test_read_byte_at_a_time;
    Alcotest.test_case "really_read: EOF at every offset is Closed" `Quick
      test_read_eof_every_offset;
    Alcotest.test_case "read_frame: dribbled stream parses cleanly" `Quick
      test_read_frame_dribbled;
    Alcotest.test_case "read_frame: junk header is a typed error" `Quick
      test_read_frame_junk_header;
  ]
