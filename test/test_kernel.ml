(* Equivalence of the precomputed evaluation-grid kernels (lib/kernel)
   with the naive Poly/Shamir paths they replace, across every field
   backend, plus tabled-vs-naive Gf2k multiplication over the full
   domain for k <= 12. Fields are exact, so the kernels must agree
   bit-for-bit, not approximately. *)

module Check (F : Field_intf.S) (Tag : sig val tag : string end) = struct
  module S = Shamir.Make (F)
  module P = S.P
  module G = S.G

  let qtest name arb f =
    QCheck.Test.make ~count:150 ~name:(Printf.sprintf "%s: %s" Tag.tag name)
      arb f

  (* (seed, n, t) with 0 <= t < n; n kept small enough for every
     backend's of_int grid. *)
  let arb_session =
    QCheck.make
      ~print:(fun (s, n, t) -> Printf.sprintf "seed=%d n=%d t=%d" s n t)
      QCheck.Gen.(
        map
          (fun (s, n, frac) -> (s, n, frac mod n))
          (triple int (int_range 1 16) (int_range 0 15)))

  let shares_of_poly n f = Array.init n (fun i -> P.eval f (S.eval_point i))

  let props =
    [
      qtest "plan deal = naive deal (same draws)" arb_session
        (fun (seed, n, t) ->
          let g1 = Prng.of_int seed and g2 = Prng.of_int seed in
          let secret = F.random (Prng.of_int (seed + 1)) in
          let planned = S.deal g1 ~t ~n ~secret in
          let naive = S.deal_naive g2 ~t ~n ~secret in
          Array.for_all2 F.equal planned naive);
      qtest "eval_poly handles dropped leading coefficients" arb_session
        (fun (seed, n, t) ->
          (* A polynomial whose sampled degree-t coefficient is zero
             normalizes shorter than t + 1; the plan must not care. *)
          let g = Prng.of_int seed in
          let d = if t = 0 then 0 else t - 1 in
          let f = P.random g ~degree:d in
          let plan = S.grid ~n ~t in
          Array.for_all2 F.equal (G.eval_poly plan f) (shares_of_poly n f));
      qtest "plan fits = naive fits_degree (full grid)"
        (QCheck.pair arb_session QCheck.bool)
        (fun ((seed, n, t), corrupt) ->
          let g = Prng.of_int seed in
          let f = P.random g ~degree:t in
          let values = shares_of_poly n f in
          if corrupt then begin
            let i = Prng.int g n in
            values.(i) <- F.add values.(i) F.one
          end;
          let points =
            List.init n (fun i -> (S.eval_point i, values.(i)))
          in
          G.fits (S.grid ~n ~t) values
          = P.fits_degree points ~max_degree:t);
      qtest "plan fits_on = naive fits_degree (subsets)"
        (QCheck.pair arb_session QCheck.bool)
        (fun ((seed, n, t), corrupt) ->
          let g = Prng.of_int seed in
          let f = P.random g ~degree:t in
          let size = 1 + Prng.int g n in
          let ids = Prng.sample_distinct g size n in
          let points =
            List.map (fun i -> (i, P.eval f (S.eval_point i))) ids
          in
          let points =
            if corrupt then
              match points with
              | (i, v) :: rest -> (i, F.add v F.one) :: rest
              | [] -> []
            else points
          in
          let naive =
            List.map (fun (i, v) -> (S.eval_point i, v)) points
          in
          G.fits_on (S.grid ~n ~t) points
          = P.fits_degree naive ~max_degree:t);
      qtest "plan reconstruct_zero = naive interpolate_at" arb_session
        (fun (seed, n, t) ->
          let g = Prng.of_int seed in
          let f = P.random g ~degree:t in
          let size = 1 + Prng.int g n in
          let ids = Prng.sample_distinct g size n in
          let points =
            List.map (fun i -> (i, P.eval f (S.eval_point i))) ids
          in
          let naive =
            P.interpolate_at
              (List.map (fun (i, v) -> (S.eval_point i, v)) points)
              F.zero
          in
          F.equal (G.reconstruct_zero (S.grid ~n ~t) points) naive);
      qtest "reconstruct_zero_checked agrees with Shamir.reconstruct"
        arb_session
        (fun (seed, n, t) ->
          let g = Prng.of_int (seed + 7) in
          let secret = F.random g in
          let shares = S.deal g ~t ~n ~secret in
          let size = t + 1 + Prng.int g (n - t) in
          let ids = Prng.sample_distinct g size n in
          let points = List.map (fun i -> (i, shares.(i))) ids in
          match G.reconstruct_zero_checked (S.grid ~n ~t) points with
          | None -> false
          | Some v -> F.equal v secret);
      qtest "reconstruct_zero_checked rejects corrupted and duplicate shares"
        arb_session
        (fun (seed, n, t) ->
          QCheck.assume (t + 1 < n);
          let g = Prng.of_int (seed + 11) in
          let shares = S.deal g ~t ~n ~secret:(F.random g) in
          let ids = Prng.sample_distinct g (t + 2) n in
          let points = List.map (fun i -> (i, shares.(i))) ids in
          let corrupted =
            match points with
            | (i, v) :: rest -> (i, F.add v F.one) :: rest
            | [] -> []
          in
          let duplicated =
            match points with p :: _ -> p :: points | [] -> []
          in
          let plan = S.grid ~n ~t in
          G.reconstruct_zero_checked plan corrupted = None
          && G.reconstruct_zero_checked plan duplicated = None);
    ]

  (* Degenerate shapes the generators reach only rarely. *)
  let test_degenerate () =
    let plan = S.grid ~n:1 ~t:0 in
    let g = Prng.of_int 3 in
    let secret = F.random g in
    let shares = S.deal_with plan g ~secret in
    Alcotest.(check bool) "t=0, n=1: share is the constant" true
      (F.equal shares.(0) secret);
    Alcotest.(check bool) "singleton subset reconstructs" true
      (F.equal (G.reconstruct_zero plan [ (0, shares.(0)) ]) secret);
    Alcotest.(check bool) "singleton fits trivially" true
      (G.fits_on plan [ (0, shares.(0)) ]);
    (* t = 0 over a wider grid: constants fit, non-constants do not. *)
    let plan = S.grid ~n:5 ~t:0 in
    let flat = Array.make 5 secret in
    Alcotest.(check bool) "constant vector fits t=0" true (G.fits plan flat);
    let bent = Array.copy flat in
    bent.(3) <- F.add bent.(3) F.one;
    Alcotest.(check bool) "bent vector rejected at t=0" false
      (G.fits plan bent)

  let test_metric_ticks () =
    (* The kernels mirror the naive paths' interpolation accounting:
       exactly one tick per check or reconstruction. *)
    let plan = S.grid ~n:7 ~t:2 in
    let g = Prng.of_int 9 in
    let shares = S.deal_with plan g ~secret:(F.random g) in
    let points = [ (0, shares.(0)); (2, shares.(2)); (5, shares.(5)) ] in
    let _, s1 = Metrics.with_counting (fun () -> G.fits plan shares) in
    let _, s2 =
      Metrics.with_counting (fun () -> G.reconstruct_zero plan points)
    in
    let _, s3 =
      Metrics.with_counting (fun () ->
          G.reconstruct_zero_checked plan points)
    in
    Alcotest.(check int) "fits ticks one interpolation" 1
      s1.Metrics.interpolations;
    Alcotest.(check int) "reconstruct ticks one interpolation" 1
      s2.Metrics.interpolations;
    Alcotest.(check int) "checked reconstruct ticks one interpolation" 1
      s3.Metrics.interpolations

  let suite =
    [
      Alcotest.test_case (Tag.tag ^ ": degenerate grids") `Quick
        test_degenerate;
      Alcotest.test_case (Tag.tag ^ ": metric ticks") `Quick
        test_metric_ticks;
    ]
    @ List.map (QCheck_alcotest.to_alcotest ~long:false) props
end

module Check_gf2k = Check (Gf2k.GF16) (struct let tag = "gf2k-16" end)
module Check_wide = Check (Gf2_wide.GF64) (struct let tag = "gf2-wide-64" end)
module Q97 = Zq_table.Make (struct let q = 97 end)
module Check_zq = Check (Q97) (struct let tag = "zq-97" end)
module Check_fft =
  Check (Fft_field.GF_k64) (struct let tag = "fft-k64" end)

(* Tabled GF(2^k) multiplication must agree with the naive
   shift-and-xor reference on the complete a x b domain for every
   k <= 12 — the exhaustive regime the issue pins down; k = 16 is
   sampled (the full 2^32 domain is out of test budget). *)
let test_tabled_mul_exhaustive () =
  for k = 1 to 12 do
    let module M = Gf2k.Make (struct let k = k end) in
    Alcotest.(check bool)
      (Printf.sprintf "k=%d is tabled" k)
      true M.tabled;
    let size = 1 lsl k in
    for a = 0 to size - 1 do
      for b = 0 to size - 1 do
        let x = M.of_int a and y = M.of_int b in
        if not (M.equal (M.mul x y) (M.mul_naive x y)) then
          Alcotest.failf "k=%d: mul %d %d diverges from naive" k a b
      done
    done
  done

let test_tabled_mul_sampled_16 () =
  let module M = Gf2k.GF16 in
  let g = Prng.of_int 1616 in
  Alcotest.(check bool) "GF16 is tabled" true M.tabled;
  Alcotest.(check bool) "GF32 is not tabled" false Gf2k.GF32.tabled;
  for _ = 1 to 200_000 do
    let a = M.random g and b = M.random g in
    if not (M.equal (M.mul a b) (M.mul_naive a b)) then
      Alcotest.failf "GF16: mul %s %s diverges from naive" (M.to_string a)
        (M.to_string b)
  done

let test_tabled_mul_ticks () =
  let module M = Gf2k.GF16 in
  let g = Prng.of_int 42 in
  let a = M.random g and b = M.random g in
  let _, tabled = Metrics.with_counting (fun () -> M.mul a b) in
  let _, naive = Metrics.with_counting (fun () -> M.mul_naive a b) in
  Alcotest.(check int) "tabled mul ticks one mult" 1
    tabled.Metrics.field_mults;
  Alcotest.(check int) "naive mul ticks one mult" 1 naive.Metrics.field_mults;
  let _, ti = Metrics.with_counting (fun () -> M.inv a) in
  Alcotest.(check int) "tabled inv ticks one inv" 1 ti.Metrics.field_invs

let suite =
  Check_gf2k.suite @ Check_wide.suite @ Check_zq.suite @ Check_fft.suite
  @ [
      Alcotest.test_case "tabled mul = naive mul (exhaustive, k<=12)" `Slow
        test_tabled_mul_exhaustive;
      Alcotest.test_case "tabled mul = naive mul (sampled, k=16)" `Quick
        test_tabled_mul_sampled_16;
      Alcotest.test_case "tabled ops tick like naive ops" `Quick
        test_tabled_mul_ticks;
    ]
