let () =
  Alcotest.run "dprbg"
    [
      ("prng", Test_prng.suite);
      ("metrics", Test_metrics.suite);
      ("trace", Test_trace.suite);
      ("field", Test_field.suite);
      ("ntt-edge", Test_ntt_edge.suite);
      ("poly", Test_poly.suite);
      ("rs", Test_rs.suite);
      ("net", Test_net.suite);
      ("sentinel", Test_sentinel.suite);
      ("graph", Test_graph.suite);
      ("shamir", Test_shamir.suite);
      ("kernel", Test_kernel.suite);
      ("batch-kernels", Test_batch_kernels.suite);
      ("bcast", Test_bcast.suite);
      ("gradecast-all", Test_gradecast_all.suite);
      ("eig-ba", Test_eig.suite);
      ("refresh", Test_refresh.suite);
      ("broadcast-protocol", Test_broadcast_protocol.suite);
      ("multivalued-ba", Test_multivalued_ba.suite);
      ("persistence", Test_persistence.suite);
      ("integration", Test_integration.suite);
      ("vss", Test_vss.suite);
      ("vss-baselines", Test_vss_baselines.suite);
      ("coin-expose", Test_coin_expose.suite);
      ("bit-gen", Test_bit_gen.suite);
      ("coin-gen", Test_coin_gen.suite);
      ("pool", Test_pool.suite);
      ("beacon", Test_beacon.suite);
      ("beacon-recovery", Test_beacon_recovery.suite);
      ("common-coin-ba", Test_common_coin_ba.suite);
      ("stats", Test_stats.suite);
      ("wire", Test_wire.suite);
      ("frame-partial", Test_frame_partial.suite);
      (* Chaos socket cases must precede every domains case in the run
         (fork is forbidden once a domain has spawned), hence the split
         registration around the transport suite. *)
      ("chaos-socket", Test_chaos.socket_suite);
      ("transport", Test_transport.suite);
      ("chaos-domains", Test_chaos.domains_suite);
      ("randomness", Test_randomness.suite);
      ("ablations", Test_ablations.suite);
      ("fuzz", Prop_fuzz.suite);
    ]
