let test_disabled_by_default () =
  Alcotest.(check bool) "disabled" false (Metrics.counting_enabled ())

let test_counts_ticks () =
  let (), snap =
    Metrics.with_counting (fun () ->
        Metrics.tick_adds 3;
        Metrics.tick_mults 2;
        Metrics.tick_invs 1;
        Metrics.tick_interpolation ();
        Metrics.tick_message ~bytes_len:16;
        Metrics.tick_message ~bytes_len:4;
        Metrics.tick_round ();
        Metrics.tick_ba ();
        Metrics.tick_gradecast ())
  in
  Alcotest.(check int) "adds" 3 snap.Metrics.field_adds;
  Alcotest.(check int) "mults" 2 snap.Metrics.field_mults;
  Alcotest.(check int) "invs" 1 snap.Metrics.field_invs;
  Alcotest.(check int) "interps" 1 snap.Metrics.interpolations;
  Alcotest.(check int) "messages" 2 snap.Metrics.messages;
  Alcotest.(check int) "bytes" 20 snap.Metrics.bytes;
  Alcotest.(check int) "rounds" 1 snap.Metrics.rounds;
  Alcotest.(check int) "ba" 1 snap.Metrics.ba_runs;
  Alcotest.(check int) "gradecast" 1 snap.Metrics.gradecasts

let test_nested_counting () =
  let (inner_snap, outer_extra), outer_snap =
    Metrics.with_counting (fun () ->
        Metrics.tick_adds 1;
        let (), inner = Metrics.with_counting (fun () -> Metrics.tick_adds 5) in
        Metrics.tick_adds 2;
        (inner, 3))
  in
  ignore outer_extra;
  Alcotest.(check int) "inner sees its own" 5 inner_snap.Metrics.field_adds;
  Alcotest.(check int) "outer sees everything" 8 outer_snap.Metrics.field_adds

let test_restores_on_exception () =
  (try
     ignore
       (Metrics.with_counting (fun () ->
            Metrics.tick_adds 1;
            failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check bool) "disabled after exception" false
    (Metrics.counting_enabled ())

(* Every live sink accumulates every tick: a tick inside a doubly-nested
   measurement reaches all three sinks, and closing an inner sink never
   steals what the outer ones already saw. *)
let test_deep_nesting_accumulates_everywhere () =
  let (), outer =
    Metrics.with_counting (fun () ->
        Metrics.tick_adds 1;
        let (), mid =
          Metrics.with_counting (fun () ->
              Metrics.tick_adds 10;
              let (), inner =
                Metrics.with_counting (fun () -> Metrics.tick_adds 100)
              in
              Alcotest.(check int) "inner" 100 inner.Metrics.field_adds)
        in
        Alcotest.(check int) "mid" 110 mid.Metrics.field_adds;
        Metrics.tick_adds 1000)
  in
  Alcotest.(check int) "outer" 1111 outer.Metrics.field_adds

let test_without_counting_suppresses () =
  let (), snap =
    Metrics.with_counting (fun () ->
        Metrics.tick_adds 1;
        Metrics.without_counting (fun () ->
            Metrics.tick_adds 100;
            Metrics.tick_round ();
            Alcotest.(check bool) "suspended inside" false
              (Metrics.counting_enabled ()));
        (* Counting resumes: later ticks land in the sink again. *)
        Metrics.tick_adds 10)
  in
  Alcotest.(check int) "suppressed ticks invisible" 11 snap.Metrics.field_adds;
  Alcotest.(check int) "rounds suppressed too" 0 snap.Metrics.rounds

let test_without_counting_restores_on_exception () =
  let (), snap =
    Metrics.with_counting (fun () ->
        Metrics.tick_adds 1;
        (try
           Metrics.without_counting (fun () ->
               Metrics.tick_adds 100;
               failwith "boom")
         with Failure _ -> ());
        Metrics.tick_adds 10)
  in
  Alcotest.(check int) "sink restored after raise" 11 snap.Metrics.field_adds

(* An inner with_counting that raises must still pop only its own sink:
   the outer measurement keeps accumulating afterwards. *)
let test_inner_exception_keeps_outer_sink () =
  let (), outer =
    Metrics.with_counting (fun () ->
        Metrics.tick_adds 1;
        (try
           ignore
             (Metrics.with_counting (fun () ->
                  Metrics.tick_adds 100;
                  failwith "boom"))
         with Failure _ -> ());
        Metrics.tick_adds 10)
  in
  (* The inner ticks happened while the outer sink was live, so the
     outer total includes them — only the inner sink is discarded. *)
  Alcotest.(check int) "outer saw everything" 111 outer.Metrics.field_adds;
  Alcotest.(check bool) "fully unwound" false (Metrics.counting_enabled ())

let test_add_diff () =
  let a = { Metrics.zero with Metrics.field_adds = 5; messages = 2 } in
  let b = { Metrics.zero with Metrics.field_adds = 3; messages = 7 } in
  let s = Metrics.add a b in
  Alcotest.(check int) "sum adds" 8 s.Metrics.field_adds;
  Alcotest.(check int) "sum msgs" 9 s.Metrics.messages;
  let d = Metrics.diff s a in
  Alcotest.(check bool) "diff recovers" true (d = b)

let test_no_ticks_without_sink () =
  Metrics.tick_adds 1000;
  let (), snap = Metrics.with_counting (fun () -> ()) in
  Alcotest.(check int) "fresh sink starts at zero" 0 snap.Metrics.field_adds

let test_to_row_labels () =
  let row = Metrics.to_row Metrics.zero in
  Alcotest.(check int) "nine components" 9 (List.length row);
  Alcotest.(check bool) "has adds label" true (List.mem_assoc "adds" row)

let suite =
  [
    Alcotest.test_case "disabled by default" `Quick test_disabled_by_default;
    Alcotest.test_case "counts ticks" `Quick test_counts_ticks;
    Alcotest.test_case "nested counting" `Quick test_nested_counting;
    Alcotest.test_case "restores on exception" `Quick test_restores_on_exception;
    Alcotest.test_case "deep nesting accumulates everywhere" `Quick
      test_deep_nesting_accumulates_everywhere;
    Alcotest.test_case "without_counting suppresses" `Quick
      test_without_counting_suppresses;
    Alcotest.test_case "without_counting restores on exception" `Quick
      test_without_counting_restores_on_exception;
    Alcotest.test_case "inner exception keeps outer sink" `Quick
      test_inner_exception_keeps_outer_sink;
    Alcotest.test_case "add and diff" `Quick test_add_diff;
    Alcotest.test_case "no ticks without sink" `Quick test_no_ticks_without_sink;
    Alcotest.test_case "to_row labels" `Quick test_to_row_labels;
  ]
