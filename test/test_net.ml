let mk n = Net.create ~n ~byte_size:String.length ()

let test_delivery_order () =
  let net = mk 4 in
  Net.send net ~src:2 ~dst:0 "b";
  Net.send net ~src:1 ~dst:0 "a";
  Net.send net ~src:3 ~dst:0 "c";
  let inbox = Net.deliver net in
  Alcotest.(check (list (pair int string)))
    "sorted by sender"
    [ (1, "a"); (2, "b"); (3, "c") ]
    inbox.(0);
  Alcotest.(check (list (pair int string))) "others empty" [] inbox.(1)

let test_queues_cleared () =
  let net = mk 2 in
  Net.send net ~src:0 ~dst:1 "x";
  ignore (Net.deliver net);
  let inbox = Net.deliver net in
  Alcotest.(check (list (pair int string))) "second round empty" [] inbox.(1)

let test_rounds_counted () =
  let net = mk 2 in
  ignore (Net.deliver net);
  ignore (Net.deliver net);
  Alcotest.(check int) "two rounds" 2 (Net.rounds_elapsed net)

let test_metrics_accounting () =
  let (), snap =
    Metrics.with_counting (fun () ->
        let net = mk 3 in
        Net.send net ~src:0 ~dst:1 "hello";
        Net.send net ~src:0 ~dst:0 "self" (* uncounted *);
        Net.send_to_all net ~src:2 (fun _ -> "xy");
        ignore (Net.deliver net))
  in
  (* send_to_all from 2 counts 2 messages (to 0 and 1, not itself). *)
  Alcotest.(check int) "messages" 3 snap.Metrics.messages;
  Alcotest.(check int) "bytes" (5 + 2 + 2) snap.Metrics.bytes;
  Alcotest.(check int) "rounds" 1 snap.Metrics.rounds

let test_equivocation_expressible () =
  let net = mk 3 in
  Net.send_to_all net ~src:0 (fun dst -> if dst = 1 then "one" else "two");
  let inbox = Net.deliver net in
  Alcotest.(check (list (pair int string))) "to 1" [ (0, "one") ] inbox.(1);
  Alcotest.(check (list (pair int string))) "to 2" [ (0, "two") ] inbox.(2)

let test_multiple_messages_same_round () =
  let net = mk 2 in
  Net.send net ~src:0 ~dst:1 "first";
  Net.send net ~src:0 ~dst:1 "second";
  let inbox = Net.deliver net in
  Alcotest.(check (list (pair int string)))
    "both kept, send order"
    [ (0, "first"); (0, "second") ]
    inbox.(1)

let test_id_validation () =
  let net = mk 2 in
  Alcotest.check_raises "bad dst"
    (Invalid_argument "Net.send: player id 5 out of range") (fun () ->
      Net.send net ~src:0 ~dst:5 "x");
  Alcotest.check_raises "bad src"
    (Invalid_argument "Net.send: player id -1 out of range") (fun () ->
      Net.send net ~src:(-1) ~dst:0 "x");
  Alcotest.check_raises "bad src, send_to_all"
    (Invalid_argument "Net.send_to_all: player id 2 out of range") (fun () ->
      Net.send_to_all net ~src:2 (fun _ -> "x"))

(* ---------------------- Degraded networks ------------------------ *)

let str_codec = (Bytes.of_string, Bytes.to_string)

let test_plan_validation () =
  Alcotest.check_raises "bad drop"
    (Invalid_argument "Net.Plan.make: drop must be in [0, 1]") (fun () ->
      ignore (Net.Plan.make ~drop:1.5 ~seed:1 ()));
  Alcotest.check_raises "bad retransmits"
    (Invalid_argument "Net.Plan.make: retransmits must be >= 0") (fun () ->
      ignore (Net.Plan.make ~retransmits:(-1) ~seed:1 ()));
  Alcotest.check_raises "bad crash round"
    (Invalid_argument "Net.Plan.make: crash round must be >= 1") (fun () ->
      ignore (Net.Plan.make ~crashes:[ (0, 0, None) ] ~seed:1 ()));
  Alcotest.check_raises "bad recovery round"
    (Invalid_argument "Net.Plan.make: recovery round must follow the crash")
    (fun () -> ignore (Net.Plan.make ~crashes:[ (0, 2, Some 2) ] ~seed:1 ()))

let test_plan_drop_all () =
  let plan = Net.Plan.make ~drop:1.0 ~seed:1 () in
  Net.with_plan plan (fun () ->
      let net = mk 3 in
      Net.send net ~src:0 ~dst:1 "x";
      Net.send net ~src:2 ~dst:2 "self";
      let inbox = Net.deliver net in
      Alcotest.(check (list (pair int string))) "link dropped" [] inbox.(1);
      (* A player's channel to itself is its own memory — link faults
         never touch it. *)
      Alcotest.(check (list (pair int string)))
        "self hand-off kept"
        [ (2, "self") ]
        inbox.(2));
  Alcotest.(check int) "drop counted" 1 (Net.Plan.stats plan).Net.Plan.dropped

let test_plan_delay () =
  let plan = Net.Plan.make ~delay:1.0 ~max_delay:1 ~seed:2 () in
  Net.with_plan plan (fun () ->
      let net = mk 2 in
      Net.send net ~src:0 ~dst:1 "late";
      let r1 = Net.deliver net in
      Alcotest.(check (list (pair int string))) "held back" [] r1.(1);
      let r2 = Net.deliver net in
      Alcotest.(check (list (pair int string)))
        "arrives one round late"
        [ (0, "late") ]
        r2.(1))

let test_plan_duplicate () =
  let plan = Net.Plan.make ~duplicate:1.0 ~seed:3 () in
  Net.with_plan plan (fun () ->
      let net = mk 2 in
      Net.send net ~src:0 ~dst:1 "twice";
      let inbox = Net.deliver net in
      Alcotest.(check (list (pair int string)))
        "two copies"
        [ (0, "twice"); (0, "twice") ]
        inbox.(1))

let test_plan_corrupt () =
  let plan = Net.Plan.make ~corrupt:1.0 ~seed:4 () in
  Net.with_plan plan (fun () ->
      let net = Net.create ~codec:str_codec ~n:2 ~byte_size:String.length () in
      Net.send net ~src:0 ~dst:1 "abcd";
      match (Net.deliver net).(1) with
      | [ (0, s) ] ->
          Alcotest.(check bool)
            "exactly one flipped bit" true
            (String.length s = 4 && s <> "abcd")
      | inbox ->
          Alcotest.failf "expected one corrupted message, got %d"
            (List.length inbox));
  (* Without a codec there is no wire form to mangle: the fault is a
     detected drop. *)
  Net.with_plan plan (fun () ->
      let net = mk 2 in
      Net.send net ~src:0 ~dst:1 "abcd";
      Alcotest.(check (list (pair int string)))
        "codec-less corruption discarded" [] (Net.deliver net).(1))

let test_plan_reorder () =
  let plan = Net.Plan.make ~reorder:1.0 ~seed:5 () in
  Net.with_plan plan (fun () ->
      let net = mk 4 in
      Net.send net ~src:1 ~dst:0 "a";
      Net.send net ~src:2 ~dst:0 "b";
      Net.send net ~src:3 ~dst:0 "c";
      let inbox = Net.deliver net in
      Alcotest.(check (list (pair int string)))
        "same messages, any order"
        [ (1, "a"); (2, "b"); (3, "c") ]
        (List.sort compare inbox.(0)));
  Alcotest.(check bool)
    "reorder counted" true
    ((Net.Plan.stats plan).Net.Plan.reordered >= 1)

let test_plan_crash_and_recovery () =
  let plan = Net.Plan.make ~crashes:[ (1, 1, Some 2) ] ~seed:6 () in
  Net.with_plan plan (fun () ->
      let net = mk 3 in
      (* Round 1: player 1 is down — sends nothing, receives nothing. *)
      Net.send net ~src:1 ~dst:0 "from-crashed";
      Net.send net ~src:0 ~dst:1 "to-crashed";
      Net.send net ~src:0 ~dst:2 "fine";
      let r1 = Net.deliver net in
      Alcotest.(check (list (pair int string))) "send voided" [] r1.(0);
      Alcotest.(check (list (pair int string))) "inbox voided" [] r1.(1);
      Alcotest.(check (list (pair int string)))
        "bystander unaffected"
        [ (0, "fine") ]
        r1.(2);
      (* Round 2: recovered — traffic flows again. *)
      Net.send net ~src:1 ~dst:0 "back";
      Net.send net ~src:0 ~dst:1 "hello-again";
      let r2 = Net.deliver net in
      Alcotest.(check (list (pair int string)))
        "sends after recovery"
        [ (1, "back") ]
        r2.(0);
      Alcotest.(check (list (pair int string)))
        "receives after recovery"
        [ (0, "hello-again") ]
        r2.(1));
  Alcotest.(check int) "crashed messages counted" 2
    (Net.Plan.stats plan).Net.Plan.crashed_msgs

let test_plan_deterministic () =
  let run () =
    let plan =
      Net.Plan.make ~drop:0.3 ~delay:0.2 ~duplicate:0.2 ~reorder:0.3 ~seed:42
        ()
    in
    Net.with_plan plan (fun () ->
        let net = mk 5 in
        let log = ref [] in
        for _ = 1 to 6 do
          for src = 0 to 4 do
            Net.send_to_all net ~src (fun dst ->
                Printf.sprintf "%d-%d" src dst)
          done;
          log := Net.deliver net :: !log
        done;
        (!log, Net.Plan.stats plan))
  in
  Alcotest.(check bool) "bit-identical replay from seed" true (run () = run ())

(* The absorption guarantee: under a bounded plan, a retransmit
   envelope with any budget >= 1 delivers every honest message exactly
   once, whatever mix of drops, delays, duplicates, corruption and
   reordering the plan throws at the individual attempts. *)
let test_exchange_absorbs_within_budget () =
  let plan =
    Net.Plan.make ~drop:0.4 ~delay:0.3 ~duplicate:0.3 ~corrupt:0.2
      ~reorder:0.5 ~retransmits:2 ~seed:7 ()
  in
  Net.with_plan plan (fun () ->
      let net = Net.create ~codec:str_codec ~n:5 ~byte_size:String.length () in
      for round = 1 to 8 do
        let inbox =
          Net.exchange net ~send:(fun () ->
              for src = 0 to 4 do
                Net.send_to_all net ~src (fun dst ->
                    Printf.sprintf "r%d:%d>%d" round src dst)
              done)
        in
        for dst = 0 to 4 do
          Alcotest.(check (list (pair int string)))
            (Printf.sprintf "round %d: complete clean inbox at %d" round dst)
            (List.init 5 (fun src ->
                 (src, Printf.sprintf "r%d:%d>%d" round src dst)))
            inbox.(dst)
        done
      done);
  let s = Net.Plan.stats plan in
  Alcotest.(check bool)
    "faults actually fired" true
    (s.Net.Plan.dropped > 0 && s.Net.Plan.delayed > 0)

let test_exchange_zero_budget_faults_land () =
  let plan = Net.Plan.make ~drop:1.0 ~retransmits:0 ~seed:8 () in
  Net.with_plan plan (fun () ->
      let net = mk 3 in
      let inbox =
        Net.exchange net ~send:(fun () -> Net.send net ~src:0 ~dst:1 "x")
      in
      Alcotest.(check (list (pair int string)))
        "no retransmit: the drop sticks" [] inbox.(1))

let test_exchange_crash_not_absorbed () =
  let plan = Net.Plan.make ~crashes:[ (2, 1, None) ] ~retransmits:3 ~seed:9 () in
  Net.with_plan plan (fun () ->
      let net = mk 3 in
      let inbox =
        Net.exchange net ~send:(fun () ->
            Net.send_to_all net ~src:0 (fun dst -> "m" ^ string_of_int dst))
      in
      Alcotest.(check (list (pair int string)))
        "no budget reaches a dead player" [] inbox.(2);
      Alcotest.(check (list (pair int string)))
        "live player served"
        [ (0, "m1") ]
        inbox.(1))

let test_exchange_without_plan_is_one_round () =
  let net = mk 2 in
  let inbox =
    Net.exchange net ~send:(fun () -> Net.send net ~src:0 ~dst:1 "plain")
  in
  Alcotest.(check (list (pair int string)))
    "identical to send-then-deliver"
    [ (0, "plain") ]
    inbox.(1);
  Alcotest.(check int) "one round" 1 (Net.rounds_elapsed net)

let test_faults_construction () =
  let f = Net.Faults.make ~n:7 ~faulty:[ 1; 4 ] in
  Alcotest.(check int) "count" 2 (Net.Faults.count f);
  Alcotest.(check bool) "1 faulty" true (Net.Faults.is_faulty f 1);
  Alcotest.(check bool) "0 honest" true (Net.Faults.is_honest f 0);
  Alcotest.(check (list int)) "faulty list" [ 1; 4 ] (Net.Faults.faulty f);
  Alcotest.(check (list int)) "honest list" [ 0; 2; 3; 5; 6 ]
    (Net.Faults.honest f)

let test_faults_random () =
  let g = Prng.of_int 5 in
  for _ = 1 to 50 do
    let f = Net.Faults.random g ~n:10 ~t:3 in
    Alcotest.(check int) "three faulty" 3 (Net.Faults.count f)
  done

let test_faults_validation () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Faults.make: duplicate id")
    (fun () -> ignore (Net.Faults.make ~n:4 ~faulty:[ 1; 1 ]));
  Alcotest.check_raises "range" (Invalid_argument "Faults.make: id out of range")
    (fun () -> ignore (Net.Faults.make ~n:4 ~faulty:[ 4 ]))

let suite =
  [
    Alcotest.test_case "delivery order" `Quick test_delivery_order;
    Alcotest.test_case "queues cleared" `Quick test_queues_cleared;
    Alcotest.test_case "rounds counted" `Quick test_rounds_counted;
    Alcotest.test_case "metrics accounting" `Quick test_metrics_accounting;
    Alcotest.test_case "equivocation expressible" `Quick
      test_equivocation_expressible;
    Alcotest.test_case "multiple messages same round" `Quick
      test_multiple_messages_same_round;
    Alcotest.test_case "id validation" `Quick test_id_validation;
    Alcotest.test_case "plan validation" `Quick test_plan_validation;
    Alcotest.test_case "plan drops" `Quick test_plan_drop_all;
    Alcotest.test_case "plan delays" `Quick test_plan_delay;
    Alcotest.test_case "plan duplicates" `Quick test_plan_duplicate;
    Alcotest.test_case "plan corrupts" `Quick test_plan_corrupt;
    Alcotest.test_case "plan reorders" `Quick test_plan_reorder;
    Alcotest.test_case "plan crash and recovery" `Quick
      test_plan_crash_and_recovery;
    Alcotest.test_case "plan deterministic from seed" `Quick
      test_plan_deterministic;
    Alcotest.test_case "exchange absorbs within budget" `Quick
      test_exchange_absorbs_within_budget;
    Alcotest.test_case "exchange with zero budget" `Quick
      test_exchange_zero_budget_faults_land;
    Alcotest.test_case "exchange cannot absorb crashes" `Quick
      test_exchange_crash_not_absorbed;
    Alcotest.test_case "exchange without a plan" `Quick
      test_exchange_without_plan_is_one_round;
    Alcotest.test_case "faults construction" `Quick test_faults_construction;
    Alcotest.test_case "faults random" `Quick test_faults_random;
    Alcotest.test_case "faults validation" `Quick test_faults_validation;
  ]
