module F = Gf2k.GF16
module C = Sealed_coin.Make (F)
module PL = Pool.Make (F)
module CE = Coin_expose.Make (F)

let n = 13
let t = 2

let roundtrip coin =
  let w = Wire.Writer.create () in
  C.write w coin;
  let r = Wire.Reader.of_bytes (Wire.Writer.contents w) in
  let back = C.read r in
  Wire.Reader.expect_end r;
  back

let test_dealer_coin_roundtrip () =
  let g = Prng.of_int 1 in
  for _ = 1 to 20 do
    let coin = C.dealer_coin g ~n ~t in
    let back = roundtrip coin in
    Alcotest.(check int) "n" coin.C.n back.C.n;
    Alcotest.(check int) "t" coin.C.fault_bound back.C.fault_bound;
    Alcotest.(check bool) "shares" true
      (Array.for_all2 F.equal coin.C.shares back.C.shares);
    Alcotest.(check bool) "trusted" true (back.C.trusted = None);
    Alcotest.(check bool) "same value" true
      (F.equal
         (Option.get (C.ground_truth coin))
         (Option.get (C.ground_truth back)))
  done

let test_generated_coin_roundtrip () =
  (* Coins with trusted matrices (from a real Coin-Gen batch) must
     survive, including their exposure behaviour. *)
  let module CG = Coin_gen.Make (F) in
  let og = Prng.of_int 2 in
  let oracle () = Metrics.without_counting (fun () -> F.random og) in
  match CG.run ~prng:(Prng.of_int 3) ~oracle ~n ~t ~m:3 () with
  | None -> Alcotest.fail "coin-gen failed"
  | Some batch ->
      for h = 0 to 2 do
        let coin = CG.coin batch h in
        let back = roundtrip coin in
        Alcotest.(check bool) "trusted present" true (back.C.trusted <> None);
        let v1 = (CE.run coin).(0) and v2 = (CE.run back).(0) in
        Alcotest.(check bool) "same exposure" true
          (match (v1, v2) with Some a, Some b -> F.equal a b | _ -> false)
      done

let test_read_rejects_garbage () =
  Alcotest.check_raises "truncated"
    (Invalid_argument "Wire.Reader: truncated input") (fun () ->
      ignore (C.read (Wire.Reader.of_bytes (Bytes.of_string "xy"))))

let test_pool_save_restore () =
  let p =
    PL.create ~prng:(Prng.of_int 4) ~n ~t ~batch_size:16 ~refill_threshold:3
      ~initial_seed:6 ()
  in
  for _ = 1 to 25 do
    ignore (PL.draw_kary p)
  done;
  let saved = PL.save p in
  let before = PL.stats p in
  let q =
    PL.restore ~prng:(Prng.of_int 999) ~batch_size:16 ~refill_threshold:3 saved
  in
  let after = PL.stats q in
  Alcotest.(check int) "available preserved" (PL.available p) (PL.available q);
  Alcotest.(check bool) "ledger preserved" true (before = after);
  (* The restored pool keeps serving — without a new dealer. *)
  for _ = 1 to 30 do
    ignore (PL.draw_kary q)
  done;
  let s = PL.stats q in
  Alcotest.(check int) "dealer coins unchanged" 6 s.PL.dealer_coins;
  Alcotest.(check int) "draws served" 55 s.PL.coins_exposed;
  Alcotest.(check int) "no unanimity failures" 0 s.PL.unanimity_failures

let test_restore_validation () =
  let p =
    PL.create ~prng:(Prng.of_int 5) ~n ~t ~batch_size:16 ~refill_threshold:3
      ~initial_seed:6 ()
  in
  let saved = PL.save p in
  (* Header-stage diagnostics embed the byte count (satellite 1). *)
  Alcotest.check_raises "bad magic"
    (PL.Corrupt_snapshot
       (Printf.sprintf "Pool.load: bad magic [bytes=%d]" (Bytes.length saved)))
    (fun () ->
      let corrupted = Bytes.copy saved in
      Bytes.set_uint8 corrupted 0 0x00;
      ignore
        (PL.load ~prng:(Prng.of_int 1) ~batch_size:16 ~refill_threshold:3
           corrupted));
  (* Bad parameters alongside intact bytes stay Invalid_argument —
     distinct from corruption. *)
  Alcotest.check_raises "bad threshold"
    (Invalid_argument "Pool.load: refill_threshold must be >= 2") (fun () ->
      ignore
        (PL.load ~prng:(Prng.of_int 1) ~batch_size:16 ~refill_threshold:1
           saved))

(* The satellite-2 guarantee: no matter which byte of a snapshot is
   damaged, [load] reports [Corrupt_snapshot] — never a raw decode
   exception from deep inside the payload reader. *)
let load_expecting_corrupt ~ctx bytes =
  match
    PL.load ~prng:(Prng.of_int 1) ~batch_size:16 ~refill_threshold:3 bytes
  with
  | (_ : PL.t) -> Alcotest.failf "%s: corrupted snapshot was accepted" ctx
  | exception PL.Corrupt_snapshot _ -> ()
  | exception e ->
      Alcotest.failf "%s: expected Corrupt_snapshot, got %s" ctx
        (Printexc.to_string e)

let test_load_rejects_every_flip () =
  let p =
    PL.create ~prng:(Prng.of_int 6) ~n ~t ~batch_size:16 ~refill_threshold:3
      ~initial_seed:6 ()
  in
  let saved = PL.save p in
  for pos = 0 to Bytes.length saved - 1 do
    for bit = 0 to 7 do
      let corrupted = Bytes.copy saved in
      Bytes.set_uint8 corrupted pos
        (Bytes.get_uint8 corrupted pos lxor (1 lsl bit));
      load_expecting_corrupt
        ~ctx:(Printf.sprintf "flip byte %d bit %d" pos bit)
        corrupted
    done
  done

let test_load_rejects_truncation_and_garbage () =
  let p =
    PL.create ~prng:(Prng.of_int 7) ~n ~t ~batch_size:16 ~refill_threshold:3
      ~initial_seed:6 ()
  in
  let saved = PL.save p in
  (* Every proper prefix, including the empty one. *)
  List.iter
    (fun len ->
      load_expecting_corrupt
        ~ctx:(Printf.sprintf "truncated to %d bytes" len)
        (Bytes.sub saved 0 len))
    [ 0; 1; 10; 11; Bytes.length saved / 2; Bytes.length saved - 1 ];
  (* Trailing garbage breaks the declared payload length. *)
  load_expecting_corrupt ~ctx:"trailing byte"
    (Bytes.cat saved (Bytes.make 1 '\x00'));
  (* Arbitrary garbage of assorted sizes. *)
  let g = Prng.of_int 8 in
  for trial = 1 to 50 do
    let len = Prng.int g 64 in
    let garbage = Bytes.init len (fun _ -> Char.chr (Prng.int g 256)) in
    load_expecting_corrupt ~ctx:(Printf.sprintf "garbage trial %d" trial)
      garbage
  done

(* Satellite 2: the v3 snapshot carries the sentinel ledger; evidence
   counts and (recomputed) quarantine flags survive a save/load cycle. *)
let test_ledger_roundtrip () =
  let config = Sentinel.active ~threshold:6 () in
  let p =
    PL.create ~sentinel:(Some config) ~prng:(Prng.of_int 9) ~n ~t
      ~batch_size:16 ~refill_threshold:3 ~initial_seed:6 ()
  in
  let ledger = Option.get (PL.ledger p) in
  Sentinel.Ledger.record ledger ~player:4 Sentinel.Bad_share;
  Sentinel.Ledger.record ledger ~player:7 Sentinel.Silent;
  Sentinel.Ledger.record ledger ~player:11 Sentinel.Equivocation;
  Sentinel.Ledger.record ledger ~player:11 Sentinel.Equivocation;
  Alcotest.(check (list int)) "p11 quarantined before save" [ 11 ]
    (Sentinel.Ledger.quarantine_set ledger);
  let q =
    PL.load ~sentinel:(Some config) ~prng:(Prng.of_int 10) ~batch_size:16
      ~refill_threshold:3 (PL.save p)
  in
  let back = Option.get (PL.ledger q) in
  Alcotest.(check bool) "counts preserved" true
    (Sentinel.Ledger.dump ledger = Sentinel.Ledger.dump back);
  Alcotest.(check (list int)) "quarantine recomputed" [ 11 ]
    (Sentinel.Ledger.quarantine_set back);
  Alcotest.(check int) "score preserved"
    (Sentinel.Ledger.score ledger ~player:4)
    (Sentinel.Ledger.score back ~player:4);
  (* A ledger-free load of the same bytes discards the counts. *)
  let bare =
    PL.load ~sentinel:None ~prng:(Prng.of_int 11) ~batch_size:16
      ~refill_threshold:3 (PL.save p)
  in
  Alcotest.(check bool) "None config discards" true (PL.ledger bare = None)

(* Keep reading v-previous: a v2 snapshot is exactly the v3 payload
   without the ledger section, under a version-2 header. *)
let make_v2_snapshot () =
  let p =
    PL.create ~sentinel:None ~prng:(Prng.of_int 12) ~n ~t ~batch_size:16
      ~refill_threshold:3 ~initial_seed:6 ()
  in
  for _ = 1 to 10 do
    ignore (PL.draw_kary p)
  done;
  let v3 = PL.save p in
  (* A sentinel-free pool's v3 payload ends with the single flag byte
     0x00; strip it and re-head as version 2. *)
  let payload = Bytes.sub v3 11 (Bytes.length v3 - 12) in
  let h = Wire.Writer.create () in
  Wire.Writer.u16 h 0xD9B6;
  Wire.Writer.u8 h 2;
  Wire.Writer.u32 h (Bytes.length payload);
  Wire.Writer.u32 h (Wire.Crc32.digest payload);
  Wire.Writer.raw h payload;
  (Wire.Writer.contents h, PL.stats p, PL.available p)

let test_load_reads_v2 () =
  let v2, saved_stats, saved_avail = make_v2_snapshot () in
  let q = PL.load ~prng:(Prng.of_int 13) ~batch_size:16 ~refill_threshold:3 v2 in
  Alcotest.(check int) "coins preserved" saved_avail (PL.available q);
  Alcotest.(check bool) "stats preserved" true (PL.stats q = saved_stats);
  (* v2 restores with a fresh (all-zero) ledger under the default
     passive config. *)
  let ledger = Option.get (PL.ledger q) in
  Alcotest.(check (list int)) "no suspects" [] (Sentinel.Ledger.suspects ledger);
  (* The restored pool keeps serving. *)
  for _ = 1 to 5 do
    ignore (PL.draw_kary q)
  done;
  (* Versions newer than the writer's are still rejected. *)
  let v9 = Bytes.copy v2 in
  Bytes.set_uint8 v9 2 9;
  load_expecting_corrupt ~ctx:"future version" v9

(* Every-bit-flip hardening holds for v2 bytes too. *)
let test_v2_rejects_every_flip () =
  let v2, _, _ = make_v2_snapshot () in
  for pos = 0 to Bytes.length v2 - 1 do
    for bit = 0 to 7 do
      let corrupted = Bytes.copy v2 in
      Bytes.set_uint8 corrupted pos
        (Bytes.get_uint8 corrupted pos lxor (1 lsl bit));
      load_expecting_corrupt
        ~ctx:(Printf.sprintf "v2 flip byte %d bit %d" pos bit)
        corrupted
    done
  done

(* --- crash-consistent truncation hardening (both snapshot formats) --- *)

(* A crash mid-write can leave any prefix of a snapshot on disk (the
   atomic temp+rename path makes this unreachable in production, but
   the loader is the last line of defense): every proper prefix of
   both snapshot formats must be rejected as Corrupt_snapshot, at
   every byte offset. *)
let test_pool_truncation_every_offset () =
  let p =
    PL.create ~prng:(Prng.of_int 14) ~n ~t ~batch_size:16 ~refill_threshold:3
      ~initial_seed:6 ()
  in
  for _ = 1 to 8 do
    ignore (PL.draw_kary p)
  done;
  let saved = PL.save p in
  for len = 0 to Bytes.length saved - 1 do
    load_expecting_corrupt
      ~ctx:(Printf.sprintf "pool snapshot truncated to %d bytes" len)
      (Bytes.sub saved 0 len)
  done

module BC = Beacon.Make (F)

let make_beacon_snapshot seed =
  let pool =
    PL.create ~prng:(Prng.of_int seed) ~n ~t ~batch_size:16 ~refill_threshold:3
      ~initial_seed:6 ()
  in
  let b = BC.create ~key:"persist-key" ~pool () in
  for _ = 1 to 3 do
    for _ = 1 to 2 do
      match BC.request b ~callback:ignore () with
      | Ok _ -> ()
      | Error r -> Alcotest.failf "rejected: %s" (BC.reject_name r)
    done;
    match BC.close_epoch b with
    | Ok _ -> ()
    | Error msg -> Alcotest.failf "close failed: %s" msg
  done;
  (BC.save b, b)

let beacon_load_expecting_corrupt ~ctx bytes =
  match
    BC.load ~key:"persist-key" ~prng:(Prng.of_int 1) ~batch_size:16
      ~refill_threshold:3 bytes
  with
  | (_ : BC.t) -> Alcotest.failf "%s: corrupted snapshot was accepted" ctx
  | exception BC.Corrupt_snapshot _ -> ()
  | exception e ->
      Alcotest.failf "%s: expected Corrupt_snapshot, got %s" ctx
        (Printexc.to_string e)

let test_beacon_truncation_every_offset () =
  let saved, _ = make_beacon_snapshot 15 in
  for len = 0 to Bytes.length saved - 1 do
    beacon_load_expecting_corrupt
      ~ctx:(Printf.sprintf "beacon snapshot truncated to %d bytes" len)
      (Bytes.sub saved 0 len)
  done;
  beacon_load_expecting_corrupt ~ctx:"beacon trailing byte"
    (Bytes.cat saved (Bytes.make 1 '\x00'))

(* Keep reading beacon-v1: exactly the v2 payload without the
   [next_request_id] word, under a version-1 header. Restored ids
   restart at 1 — the pre-journal behavior. *)
let test_beacon_load_reads_v1 () =
  let v2, b = make_beacon_snapshot 16 in
  let payload = Bytes.sub v2 11 (Bytes.length v2 - 11) in
  (* u32 next_seq + 16-byte head + five u32 counters = 40 bytes, then
     the u32 next_request_id v1 lacks. *)
  let v1_payload =
    Bytes.cat (Bytes.sub payload 0 40)
      (Bytes.sub payload 44 (Bytes.length payload - 44))
  in
  let h = Wire.Writer.create () in
  Wire.Writer.u16 h 0xBEA1;
  Wire.Writer.u8 h 1;
  Wire.Writer.u32 h (Bytes.length v1_payload);
  Wire.Writer.u32 h (Wire.Crc32.digest v1_payload);
  Wire.Writer.raw h v1_payload;
  let q =
    BC.load ~key:"persist-key" ~prng:(Prng.of_int 17) ~batch_size:16
      ~refill_threshold:3 (Wire.Writer.contents h)
  in
  Alcotest.(check int) "chain position preserved" (BC.next_seq b)
    (BC.next_seq q);
  Alcotest.(check bool) "head preserved" true
    (Beacon_hash.equal (BC.head b) (BC.head q));
  (* The restored beacon keeps serving on the same chain. *)
  (match BC.request q ~callback:ignore () with
  | Ok id -> Alcotest.(check int) "ids restart at 1" 1 id
  | Error r -> Alcotest.failf "rejected: %s" (BC.reject_name r));
  match BC.close_epoch q with
  | Ok e -> Alcotest.(check int) "chain continues" (BC.next_seq b) e.BC.seq
  | Error msg -> Alcotest.failf "close failed: %s" msg

let suite =
  [
    Alcotest.test_case "dealer coin roundtrip" `Quick test_dealer_coin_roundtrip;
    Alcotest.test_case "generated coin roundtrip" `Quick
      test_generated_coin_roundtrip;
    Alcotest.test_case "read rejects garbage" `Quick test_read_rejects_garbage;
    Alcotest.test_case "pool save/restore" `Quick test_pool_save_restore;
    Alcotest.test_case "restore validation" `Quick test_restore_validation;
    Alcotest.test_case "load rejects every bit flip" `Quick
      test_load_rejects_every_flip;
    Alcotest.test_case "load rejects truncation and garbage" `Quick
      test_load_rejects_truncation_and_garbage;
    Alcotest.test_case "ledger roundtrip (v3)" `Quick test_ledger_roundtrip;
    Alcotest.test_case "load reads v2 snapshots" `Quick test_load_reads_v2;
    Alcotest.test_case "v2 rejects every bit flip" `Quick
      test_v2_rejects_every_flip;
    Alcotest.test_case "pool truncation at every offset" `Quick
      test_pool_truncation_every_offset;
    Alcotest.test_case "beacon truncation at every offset" `Quick
      test_beacon_truncation_every_offset;
    Alcotest.test_case "beacon load reads v1 snapshots" `Quick
      test_beacon_load_reads_v1;
  ]
