module F = Gf2k.GF16
module PL = Pool.Make (F)
module CG = PL.CG
module CE = PL.CE

let n = 13
let t = 2

let mk ?adversary ?expose_behavior seed =
  PL.create ?adversary ?expose_behavior ~prng:(Prng.of_int seed) ~n ~t
    ~batch_size:16 ~refill_threshold:3 ~initial_seed:6 ()

let test_bootstrap_sustains_draws () =
  let p = mk 1 in
  (* 6 dealer coins fund an unbounded stream: draw far more than the
     initial seed. *)
  for _ = 1 to 120 do
    ignore (PL.draw_kary p)
  done;
  let s = PL.stats p in
  Alcotest.(check int) "dealer used once, 6 coins" 6 s.PL.dealer_coins;
  Alcotest.(check bool) "refilled repeatedly" true (s.PL.refills >= 3);
  Alcotest.(check int) "all draws served" 120 s.PL.coins_exposed;
  Alcotest.(check bool) "no unanimity failures" true
    (s.PL.unanimity_failures = 0);
  Alcotest.(check bool) "pool still stocked" true (PL.available p > 0)

let test_seed_consumption_is_small () =
  let p = mk 2 in
  for _ = 1 to 100 do
    ignore (PL.draw_kary p)
  done;
  let s = PL.stats p in
  (* Each refill consumes 1 + ba_iterations seed coins; with honest
     players that is 2 per refill of 16 coins. *)
  Alcotest.(check int) "2 seed coins per refill"
    (2 * s.PL.refills) s.PL.seed_coins_consumed;
  Alcotest.(check int) "one BA per refill" s.PL.refills s.PL.ba_iterations;
  Alcotest.(check bool) "amortized seed usage < 15%" true
    (s.PL.seed_coins_consumed * 100 < 15 * s.PL.coins_exposed)

let test_draw_bit_buffers () =
  let p = mk 3 in
  let before = (PL.stats p).PL.coins_exposed in
  (* k = 16 bits per coin: 16 bit draws must expose exactly one coin. *)
  for _ = 1 to 16 do
    ignore (PL.draw_bit p)
  done;
  let after = (PL.stats p).PL.coins_exposed in
  Alcotest.(check int) "one coin for 16 bits" 1 (after - before)

let test_bits_balanced () =
  let p = mk 4 in
  let ones = ref 0 in
  let total = 4000 in
  for _ = 1 to total do
    if PL.draw_bit p then incr ones
  done;
  let dev = abs (!ones - (total / 2)) in
  (* sigma ~ 31.6; 5 sigma. *)
  Alcotest.(check bool) (Printf.sprintf "%d ones" !ones) true (dev < 158)

let test_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "threshold >= 2" true
    (bad (fun () ->
         PL.create ~prng:(Prng.of_int 1) ~n ~t ~batch_size:16 ~refill_threshold:1
           ~initial_seed:6 ()));
  Alcotest.(check bool) "seed > threshold" true
    (bad (fun () ->
         PL.create ~prng:(Prng.of_int 1) ~n ~t ~batch_size:16 ~refill_threshold:3
           ~initial_seed:3 ()));
  Alcotest.(check bool) "batch >= 2*threshold" true
    (bad (fun () ->
         PL.create ~prng:(Prng.of_int 1) ~n ~t ~batch_size:5 ~refill_threshold:3
           ~initial_seed:6 ()))

let test_under_byzantine_faults () =
  (* Mobile adversary: a different random fault set on every refill,
     plus exposure-time lying — the pool must keep producing and honest
     reconstruction must hold throughout. *)
  let g = Prng.of_int 55 in
  let fault_sets = Array.init 64 (fun _ -> Net.Faults.random g ~n ~t) in
  let adversary refill =
    let faults = fault_sets.(refill mod 64) in
    CG.faulty_with ~as_dealer:(CG.BG.Bad_degree [ 0 ])
      ~as_gamma:CG.Silent_vec ~as_ba:(Phase_king.Fixed false) faults
  in
  let expose_behavior refill i =
    let faults = fault_sets.(refill mod 64) in
    if Net.Faults.is_faulty faults i then CE.Send (F.of_int 0xBEEF)
    else CE.Honest
  in
  let p = mk ~adversary ~expose_behavior 5 in
  for _ = 1 to 80 do
    ignore (PL.draw_kary p)
  done;
  let s = PL.stats p in
  Alcotest.(check int) "all draws served" 80 s.PL.coins_exposed;
  Alcotest.(check bool) "refilled" true (s.PL.refills >= 2)

let test_metrics_visibility () =
  let p = mk 6 in
  let _, snap =
    Metrics.with_counting (fun () ->
        for _ = 1 to 30 do
          ignore (PL.draw_kary p)
        done)
  in
  Alcotest.(check bool) "messages counted" true (snap.Metrics.messages > 0);
  Alcotest.(check bool) "interpolations counted" true
    (snap.Metrics.interpolations > 0);
  Alcotest.(check bool) "BA counted" true (snap.Metrics.ba_runs >= 1)

let test_randomized_ba_flavor () =
  (* Section 1.2: with a randomized BA inside the generator, the BA's
     common coins come out of the pool's own seed reserve. *)
  let p =
    PL.create ~ba_flavor:`Common_coin ~prng:(Prng.of_int 77) ~n ~t
      ~batch_size:16 ~refill_threshold:4 ~initial_seed:6 ()
  in
  for _ = 1 to 60 do
    ignore (PL.draw_kary p)
  done;
  let s = PL.stats p in
  Alcotest.(check int) "all draws served" 60 s.PL.coins_exposed;
  Alcotest.(check bool) "refilled" true (s.PL.refills >= 4);
  Alcotest.(check int) "no unanimity failures" 0 s.PL.unanimity_failures;
  (* Each refill needs the check coin, the leader coin and at least one
     coin's worth of BA phase bits: strictly more than the deterministic
     flavor's 2 per refill. *)
  Alcotest.(check bool)
    (Printf.sprintf "seed usage %d > 2 per refill" s.PL.seed_coins_consumed)
    true
    (s.PL.seed_coins_consumed > 2 * s.PL.refills);
  (* Conservation still holds. *)
  Alcotest.(check int) "conservation"
    (s.PL.dealer_coins + s.PL.generated_coins)
    (s.PL.coins_exposed + s.PL.seed_coins_consumed + PL.available p)

let test_randomized_ba_under_attack () =
  let g = Prng.of_int 88 in
  let fault_sets = Array.init 32 (fun _ -> Net.Faults.random g ~n ~t) in
  let adversary refill =
    CG.faulty_with ~as_dealer:(CG.BG.Bad_degree [ 0 ])
      ~as_ba:(Phase_king.Fixed false)
      fault_sets.(refill mod 32)
  in
  let p =
    PL.create ~ba_flavor:`Common_coin ~adversary ~prng:(Prng.split g) ~n ~t
      ~batch_size:16 ~refill_threshold:4 ~initial_seed:6 ()
  in
  for _ = 1 to 40 do
    ignore (PL.draw_kary p)
  done;
  let s = PL.stats p in
  Alcotest.(check int) "served" 40 s.PL.coins_exposed;
  Alcotest.(check int) "no unanimity failures" 0 s.PL.unanimity_failures

(* DESIGN E12: the long-run soak. At least 50 refill epochs under a
   mobile adversary AND a degraded network (5% message drop, retransmit
   budget 1), with a crash-recovery in the middle — the pool is
   snapshotted, "crashes", a corrupted copy of the snapshot is rejected,
   and service resumes from the intact bytes. Over the whole run the
   pool never starves, never breaks unanimity, and the trusted dealer is
   consulted exactly once (at the very first setup — the paper's
   contrast with [Rab83]). *)
let test_degraded_soak_with_recovery () =
  let g = Prng.of_int 99 in
  let fault_sets = Array.init 64 (fun _ -> Net.Faults.random g ~n ~t) in
  let adversary refill =
    let faults = fault_sets.(refill mod 64) in
    CG.faulty_with ~as_dealer:(CG.BG.Bad_degree [ 0 ])
      ~as_gamma:CG.Silent_vec ~as_ba:(Phase_king.Fixed false) faults
  in
  let expose_behavior refill i =
    let faults = fault_sets.(refill mod 64) in
    if Net.Faults.is_faulty faults i then CE.Send (F.of_int 0xBEEF)
    else CE.Honest
  in
  let plan = Net.Plan.make ~drop:0.05 ~retransmits:1 ~seed:424242 () in
  Net.with_plan plan (fun () ->
      let p =
        PL.create ~adversary ~expose_behavior ~prng:(Prng.split g) ~n ~t
          ~batch_size:8 ~refill_threshold:3 ~initial_seed:6 ()
      in
      for _ = 1 to 200 do
        ignore (PL.draw_kary p)
      done;
      let mid = PL.stats p in
      Alcotest.(check bool) "refilling before the crash" true
        (mid.PL.refills >= 25);
      (* Crash: persist, reject a damaged snapshot, recover, resume. *)
      let saved = PL.save p in
      (let corrupted = Bytes.copy saved in
       let pos = Bytes.length saved / 2 in
       Bytes.set_uint8 corrupted pos (Bytes.get_uint8 corrupted pos lxor 0x10);
       match
         PL.load ~prng:(Prng.of_int 1) ~batch_size:8 ~refill_threshold:3
           corrupted
       with
       | (_ : PL.t) -> Alcotest.fail "corrupted snapshot accepted"
       | exception PL.Corrupt_snapshot _ -> ());
      let q =
        PL.load ~adversary ~expose_behavior ~prng:(Prng.split g) ~batch_size:8
          ~refill_threshold:3 saved
      in
      for _ = 1 to 200 do
        ignore (PL.draw_kary q)
      done;
      let s = PL.stats q in
      Alcotest.(check bool)
        (Printf.sprintf "%d refill epochs over the soak" s.PL.refills)
        true (s.PL.refills >= 50);
      Alcotest.(check int) "dealer consulted exactly once (6 coins)" 6
        s.PL.dealer_coins;
      Alcotest.(check int) "all 400 draws served" 400 s.PL.coins_exposed;
      Alcotest.(check int) "no unanimity failures" 0 s.PL.unanimity_failures;
      Alcotest.(check int) "no refill attempt failed"
        s.PL.refills s.PL.refill_attempts;
      Alcotest.(check int) "no backoff needed" 0 s.PL.backoff_rounds);
  Alcotest.(check bool) "the network really was lossy" true
    ((Net.Plan.stats plan).Net.Plan.dropped > 100)

(* Graceful degradation of the refill loop: with a 1-iteration BA cap
   and faulty players whose proposal grade-casts stay silent, a Coin-Gen
   run fails outright whenever a faulty leader is drawn (its proposal
   carries no payload, so BA rejects it) — the pool must absorb those
   failures with backoff-and-retry instead of starving on the first
   one. *)
let test_refill_backoff_and_retry () =
  let g = Prng.of_int 31337 in
  let fault_sets = Array.init 32 (fun _ -> Net.Faults.random g ~n ~t) in
  let adversary refill =
    CG.faulty_with ~as_gradecast_dealer:Gradecast.Dealer_silent
      ~as_ba:(Phase_king.Fixed false)
      fault_sets.(refill mod 32)
  in
  (* Every failed attempt still burns ~2 seed coins (check coin plus a
     leader draw), so the reserve must fund the retry budget: hence the
     tall threshold — the DESIGN §11 sizing rule. *)
  let p =
    PL.create ~adversary ~max_ba_iterations:1 ~prng:(Prng.split g) ~n ~t
      ~batch_size:16 ~refill_threshold:8 ~initial_seed:9 ()
  in
  let (), snap =
    Metrics.with_counting (fun () ->
        for _ = 1 to 300 do
          ignore (PL.draw_kary p)
        done)
  in
  let s = PL.stats p in
  Alcotest.(check bool)
    (Printf.sprintf "%d attempts > %d refills" s.PL.refill_attempts
       s.PL.refills)
    true
    (s.PL.refill_attempts > s.PL.refills);
  Alcotest.(check bool) "backoff rounds charged" true (s.PL.backoff_rounds >= 1);
  Alcotest.(check bool) "backoff visible to Metrics" true
    (snap.Metrics.rounds > s.PL.backoff_rounds);
  Alcotest.(check int) "all draws served" 300 s.PL.coins_exposed

(* Coin conservation under arbitrary operation sequences: every coin in
   existence was either dealt at setup or generated by a refill, and is
   now either exposed (as seed or for the application) or still in the
   pool. Refresh re-randomizes in place, so it must not disturb the
   ledger. *)
let prop_conservation =
  QCheck.Test.make ~count:40 ~name:"pool coin conservation"
    QCheck.(pair int (int_range 10 60))
    (fun (seed, ops) ->
      let p = mk seed in
      let g = Prng.of_int (seed + 1) in
      for _ = 1 to ops do
        match Prng.int g 10 with
        | 0 -> PL.refresh p
        | 1 | 2 | 3 -> ignore (PL.draw_bit p)
        | _ -> ignore (PL.draw_kary p)
      done;
      let s = PL.stats p in
      s.PL.dealer_coins + s.PL.generated_coins
      = s.PL.coins_exposed + s.PL.seed_coins_consumed + PL.available p
      && s.PL.unanimity_failures = 0)

(* --- sentinel attribution through the pool (DESIGN section 14) ----- *)

(* Two persistent exposure-time liars (exactly t of them): an active
   ledger must quarantine both within a handful of draws, trigger an
   early proactive refresh, keep serving coins from the surviving
   trusted majority — and never blame an honest player. *)
let test_active_ledger_quarantines_liars () =
  let liars = [ 0; 1 ] in
  let expose_behavior _refill i =
    if List.mem i liars then CE.Send (F.of_int 0xBEEF) else CE.Honest
  in
  let p =
    PL.create ~expose_behavior
      ~sentinel:(Some (Sentinel.active ~threshold:6 ()))
      ~prng:(Prng.of_int 7100) ~n ~t ~batch_size:16 ~refill_threshold:3
      ~initial_seed:6 ()
  in
  for _ = 1 to 40 do
    ignore (PL.draw_kary p)
  done;
  let ledger = Option.get (PL.ledger p) in
  Alcotest.(check (list int)) "exactly the liars are quarantined" liars
    (Sentinel.Ledger.quarantine_set ledger);
  let s = PL.stats p in
  Alcotest.(check int) "all draws served" 40 s.PL.coins_exposed;
  Alcotest.(check bool) "rising suspicion triggered an early refresh" true
    (s.PL.refreshes >= 1)

(* More liars than the fault bound: once the evidence implies > t
   corrupted players the reconstruction assumption is void and draws
   must refuse with a diagnostic rather than vend biased coins. *)
let test_safe_mode_beyond_fault_bound () =
  let liars = [ 0; 1; 2 ] in
  let expose_behavior _refill i =
    if List.mem i liars then CE.Send (F.of_int 0xBEEF) else CE.Honest
  in
  let p =
    PL.create ~expose_behavior
      ~sentinel:(Some (Sentinel.active ~threshold:6 ()))
      ~prng:(Prng.of_int 7200) ~n ~t ~batch_size:16 ~refill_threshold:3
      ~initial_seed:6 ()
  in
  let refused =
    try
      for _ = 1 to 40 do
        ignore (PL.draw_kary p)
      done;
      None
    with PL.Safe_mode msg -> Some msg
  in
  match refused with
  | None -> Alcotest.fail "pool kept vending with > t quarantined players"
  | Some msg ->
      Alcotest.(check bool) "diagnostic carries the suspicion table" true
        (let nl = String.length "QUARANTINED" and hl = String.length msg in
         let rec go i =
           i + nl <= hl
           && (String.sub msg i nl = "QUARANTINED" || go (i + 1))
         in
         go 0);
      Alcotest.(check bool) "ledger shows more than t quarantined" true
        (Sentinel.Ledger.quarantined_count (Option.get (PL.ledger p)) > t)

(* The passive-ledger bit-identity pin: the deployment-default passive
   ledger must leave the draw stream, the stats and the metered cost of
   a lying-adversary run exactly equal to a ledger-free run — evidence
   collection is observation, never interference. *)
let test_passive_ledger_bit_identical () =
  let expose_behavior _refill i = if i = 4 then CE.Silent else CE.Honest in
  let run sentinel =
    let p =
      PL.create ~expose_behavior ~sentinel ~prng:(Prng.of_int 7300) ~n ~t
        ~batch_size:16 ~refill_threshold:3 ~initial_seed:6 ()
    in
    let draws, snap =
      Metrics.with_counting (fun () ->
          List.init 60 (fun _ -> PL.draw_kary p))
    in
    (draws, PL.stats p, snap)
  in
  (* Warmup: the kernel grid/subset-weight caches are process-global and
     pay their metered setup mults exactly once, so a throwaway run
     first puts both measured runs on identical warm caches. *)
  ignore (run None);
  let d0, s0, m0 = run None in
  let d1, s1, m1 = run (Some Sentinel.passive) in
  Alcotest.(check bool) "draw streams bit-identical" true
    (List.for_all2 F.equal d0 d1);
  Alcotest.(check bool) "stats identical" true (s0 = s1);
  Alcotest.(check int) "field mults identical" m0.Metrics.field_mults
    m1.Metrics.field_mults;
  Alcotest.(check int) "messages identical" m0.Metrics.messages
    m1.Metrics.messages

let suite =
  [
    Alcotest.test_case "bootstrap sustains draws" `Quick
      test_bootstrap_sustains_draws;
    Alcotest.test_case "seed consumption small" `Quick
      test_seed_consumption_is_small;
    Alcotest.test_case "draw_bit buffers" `Quick test_draw_bit_buffers;
    Alcotest.test_case "bits balanced" `Quick test_bits_balanced;
    Alcotest.test_case "parameter validation" `Quick test_validation;
    Alcotest.test_case "byzantine faults tolerated" `Quick
      test_under_byzantine_faults;
    Alcotest.test_case "metrics visibility" `Quick test_metrics_visibility;
    Alcotest.test_case "randomized BA flavor" `Quick test_randomized_ba_flavor;
    Alcotest.test_case "randomized BA under attack" `Quick
      test_randomized_ba_under_attack;
    Alcotest.test_case "degraded soak with crash recovery" `Quick
      test_degraded_soak_with_recovery;
    Alcotest.test_case "refill backoff and retry" `Quick
      test_refill_backoff_and_retry;
    Alcotest.test_case "active ledger quarantines liars" `Quick
      test_active_ledger_quarantines_liars;
    Alcotest.test_case "safe mode beyond fault bound" `Quick
      test_safe_mode_beyond_fault_bound;
    Alcotest.test_case "passive ledger bit-identical" `Quick
      test_passive_ledger_bit_identical;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) [ prop_conservation ]
