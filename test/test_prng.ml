let test_deterministic () =
  let a = Prng.of_int 42 and b = Prng.of_int 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.of_int 1 and b = Prng.of_int 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.next_int64 a) (Prng.next_int64 b)) then
      differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_split_independence () =
  let g = Prng.of_int 7 in
  let a = Prng.split g and b = Prng.split g in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.next_int64 a) (Prng.next_int64 b)) then
      differs := true
  done;
  Alcotest.(check bool) "split streams differ" true !differs

let test_copy_replays () =
  let g = Prng.of_int 3 in
  ignore (Prng.next_int64 g);
  let c = Prng.copy g in
  Alcotest.(check int64) "copy replays" (Prng.next_int64 g) (Prng.next_int64 c)

let test_int_bounds () =
  let g = Prng.of_int 11 in
  for _ = 1 to 2000 do
    let v = Prng.int g 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_covers_range () =
  let g = Prng.of_int 13 in
  let seen = Array.make 8 false in
  for _ = 1 to 1000 do
    seen.(Prng.int g 8) <- true
  done;
  Alcotest.(check bool) "all 8 values seen" true (Array.for_all Fun.id seen)

let test_bits_width () =
  let g = Prng.of_int 17 in
  for w = 0 to 62 do
    let v = Prng.bits g w in
    Alcotest.(check bool)
      (Printf.sprintf "bits %d in range" w)
      true
      (v >= 0 && (w = 62 || v < 1 lsl w))
  done

let test_bool_balanced () =
  let g = Prng.of_int 19 in
  let trues = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Prng.bool g then incr trues
  done;
  (* 5 sigma around n/2. *)
  let dev = abs (!trues - (n / 2)) in
  Alcotest.(check bool) "roughly balanced" true (dev < 250)

let test_sample_distinct () =
  let g = Prng.of_int 23 in
  List.iter
    (fun (m, bound) ->
      let s = Prng.sample_distinct g m bound in
      Alcotest.(check int) "cardinality" m (List.length s);
      Alcotest.(check int) "distinct" m (List.length (List.sort_uniq compare s));
      List.iter
        (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < bound))
        s;
      Alcotest.(check bool) "sorted" true (List.sort compare s = s))
    [ (0, 5); (3, 100); (5, 5); (7, 10); (50, 60) ]

let test_shuffle_permutes () =
  let g = Prng.of_int 29 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

(* Rejection sampling must stay uniform at bounds that are not powers
   of two — the biased-modulo mistake shows up exactly there. Pearson
   chi-square against the uniform law, with a generous threshold:
   E[chi2] = b - 1, Var = 2(b - 1), and we allow 6 sigma plus slack. *)
let test_int_uniform_non_power_of_two () =
  let g = Prng.of_int 37 in
  List.iter
    (fun bound ->
      let per_bucket = 2000 in
      let n = per_bucket * bound in
      let counts = Array.make bound 0 in
      for _ = 1 to n do
        let v = Prng.int g bound in
        counts.(v) <- counts.(v) + 1
      done;
      let expected = float_of_int per_bucket in
      let chi2 =
        Array.fold_left
          (fun acc c ->
            let d = float_of_int c -. expected in
            acc +. (d *. d /. expected))
          0.0 counts
      in
      let df = float_of_int (bound - 1) in
      let threshold = df +. (6.0 *. sqrt (2.0 *. df)) +. 10.0 in
      Alcotest.(check bool)
        (Printf.sprintf "chi2 %.1f <= %.1f at bound %d" chi2 threshold bound)
        true (chi2 <= threshold))
    [ 3; 5; 6; 7; 10; 12; 100 ]

(* Drawing from one split stream must not perturb its sibling: the
   sibling produces the same outputs whether or not the first stream
   was consumed in between. *)
let test_split_streams_do_not_interfere () =
  let mk () =
    let g = Prng.of_int 41 in
    let a = Prng.split g in
    let b = Prng.split g in
    (a, b)
  in
  let _, b_quiet = mk () in
  let a, b_noisy = mk () in
  for _ = 1 to 100 do
    ignore (Prng.next_int64 a)
  done;
  for _ = 1 to 50 do
    Alcotest.(check int64) "sibling unaffected" (Prng.next_int64 b_quiet)
      (Prng.next_int64 b_noisy)
  done

(* A copy taken mid-stream replays the original exactly, across the
   whole derived-operation surface, while leaving the source intact. *)
let test_copy_replays_mixed_ops () =
  let drain g =
    let acc = ref [] in
    let push x = acc := x :: !acc in
    for round = 1 to 20 do
      push (Prng.int g (2 + round));
      push (if Prng.bool g then 1 else 0);
      push (Prng.bits g 13);
      let a = Array.init 7 Fun.id in
      Prng.shuffle g a;
      Array.iter push a;
      List.iter push (Prng.sample_distinct g 3 50)
    done;
    !acc
  in
  let g = Prng.of_int 43 in
  ignore (Prng.next_int64 g);
  ignore (Prng.int g 1000);
  let c = Prng.copy g in
  let from_original = drain g in
  let from_copy = drain c in
  Alcotest.(check (list int)) "copy replays every derived op" from_original
    from_copy;
  (* The copy's consumption must not have advanced the original. *)
  let c2 = Prng.copy g in
  Alcotest.(check int64) "original undisturbed by its copies"
    (Prng.next_int64 g) (Prng.next_int64 c2)

let test_split_n () =
  let g = Prng.of_int 31 in
  let gs = Prng.split_n g 5 in
  Alcotest.(check int) "count" 5 (Array.length gs);
  let outs = Array.map Prng.next_int64 gs in
  let distinct =
    List.length (List.sort_uniq Int64.compare (Array.to_list outs))
  in
  Alcotest.(check int) "first outputs distinct" 5 distinct

let suite =
  [
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "copy replays" `Quick test_copy_replays;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int covers range" `Quick test_int_covers_range;
    Alcotest.test_case "bits width" `Quick test_bits_width;
    Alcotest.test_case "bool balanced" `Quick test_bool_balanced;
    Alcotest.test_case "int uniform at non-power-of-two bounds" `Quick
      test_int_uniform_non_power_of_two;
    Alcotest.test_case "split streams do not interfere" `Quick
      test_split_streams_do_not_interfere;
    Alcotest.test_case "copy replays mixed derived ops" `Quick
      test_copy_replays_mixed_ops;
    Alcotest.test_case "sample_distinct" `Quick test_sample_distinct;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "split_n" `Quick test_split_n;
  ]
