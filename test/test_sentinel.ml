(* The sentinel evidence ledger: scoring arithmetic, link-slack
   forgiveness, quarantine thresholds and stickiness, and the ambient
   observer contract (lazy thunks, exception-safe install). *)

module S = Sentinel
module L = Sentinel.Ledger

let test_scoring_weights () =
  let l = L.create ~n:4 () in
  L.record l ~player:0 S.Bad_share;
  L.record l ~player:0 S.Rejected_dealing;
  L.record l ~player:1 S.Equivocation;
  L.record l ~player:1 S.Grade_zero;
  (* Default weights: bad_share 3 + rejected_dealing 3 = 6;
     equivocation 4 + grade_zero 2 = 6. *)
  Alcotest.(check int) "decode + dealing evidence" 6 (L.score l ~player:0);
  Alcotest.(check int) "gradecast evidence" 6 (L.score l ~player:1);
  Alcotest.(check int) "untouched player" 0 (L.score l ~player:2);
  Alcotest.(check (list int)) "suspects are exactly the accused" [ 0; 1 ]
    (L.suspects l);
  Alcotest.(check int) "counts are per-kind" 1 (L.count l ~player:0 S.Bad_share);
  Alcotest.(check int) "other kinds untouched" 0
    (L.count l ~player:0 S.Equivocation)

let test_link_slack_forgives_noise () =
  (* Silent and Undecodable are the only kinds a lossy link can produce
     for an honest player; the first [link_slack] (default 2) of their
     combined count must score zero. *)
  let l = L.create ~n:3 () in
  L.record l ~player:0 S.Silent;
  L.record l ~player:0 S.Silent;
  Alcotest.(check int) "two silences forgiven" 0 (L.score l ~player:0);
  L.record l ~player:0 S.Silent;
  Alcotest.(check int) "third silence charged at weight 1" 1
    (L.score l ~player:0);
  (* Forgiveness burns the cheapest-weighted noise first: with one
     silent (w=1) and two undecodable (w=2), slack 2 forgives the silent
     and one undecodable, charging a single undecodable. *)
  let l2 = L.create ~n:3 () in
  L.record l2 ~player:1 S.Silent;
  L.record l2 ~player:1 S.Undecodable;
  L.record l2 ~player:1 S.Undecodable;
  Alcotest.(check int) "mixed noise charges one undecodable" 2
    (L.score l2 ~player:1);
  (* Slack never shields hard evidence. *)
  let l3 = L.create ~n:3 () in
  L.record l3 ~player:2 S.Bad_share;
  Alcotest.(check int) "bad share not forgivable" 3 (L.score l3 ~player:2)

let test_quarantine_threshold_and_stickiness () =
  let l = L.create ~config:(S.active ~threshold:6 ()) ~n:5 () in
  L.record l ~player:3 S.Equivocation;
  Alcotest.(check bool) "score 4 below threshold 6" false
    (L.quarantined l ~player:3);
  L.record l ~player:3 S.Grade_zero;
  Alcotest.(check bool) "score 6 crosses threshold" true
    (L.quarantined l ~player:3);
  Alcotest.(check (list int)) "quarantine set" [ 3 ] (L.quarantine_set l);
  Alcotest.(check int) "quarantined count" 1 (L.quarantined_count l)

let test_passive_never_quarantines () =
  let l = L.create ~config:S.passive ~n:3 () in
  for _ = 1 to 50 do
    L.record l ~player:1 S.Bad_share
  done;
  Alcotest.(check int) "evidence piles up" 150 (L.score l ~player:1);
  Alcotest.(check bool) "no quarantine without a threshold" false
    (L.quarantined l ~player:1);
  Alcotest.(check (list int)) "quarantine set empty" [] (L.quarantine_set l)

let test_out_of_range_ignored () =
  let l = L.create ~n:3 () in
  L.record l ~player:(-1) S.Bad_share;
  L.record l ~player:7 S.Bad_share;
  Alcotest.(check (list int)) "no phantom suspects" [] (L.suspects l);
  Alcotest.(check int) "out-of-range score is 0" 0 (L.score l ~player:7);
  Alcotest.(check bool) "out-of-range never quarantined" false
    (L.quarantined l ~player:7)

let test_dump_of_counts_roundtrip () =
  let l = L.create ~config:(S.active ~threshold:6 ()) ~n:4 () in
  L.record l ~player:0 S.Bad_share;
  L.record l ~player:2 S.Bad_share;
  L.record l ~player:2 S.Rejected_dealing;
  let restored = L.of_counts ~config:(S.active ~threshold:6 ()) (L.dump l) in
  Alcotest.(check bool) "counts equal" true (L.dump restored = L.dump l);
  Alcotest.(check (list int)) "quarantine recomputed from scores" [ 2 ]
    (L.quarantine_set restored);
  (* The same counts under a passive config rehydrate without flags. *)
  let passive = L.of_counts ~config:S.passive (L.dump l) in
  Alcotest.(check (list int)) "passive rehydration never quarantines" []
    (L.quarantine_set passive);
  Alcotest.(check bool) "bad row width rejected" true
    (try
       ignore (L.of_counts [| [| 0; 0 |] |]);
       false
     with Invalid_argument _ -> true)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_pp_table () =
  let l = L.create ~config:(S.active ~threshold:3 ()) ~n:3 () in
  L.record l ~player:1 S.Bad_share;
  let s = Format.asprintf "%a" L.pp_table l in
  Alcotest.(check bool) "table names the quarantined player" true
    (contains ~needle:"QUARANTINED" s);
  Alcotest.(check bool) "table prints the threshold" true
    (contains ~needle:"score >= 3" s)

let test_observe_is_lazy_without_ledger () =
  (* With no ambient ledger the evidence thunk must never be forced —
     that is the "ledger-free runs pay nothing" guarantee. *)
  let forced = ref false in
  S.observe (fun () ->
      forced := true;
      [ (0, S.Bad_share) ]);
  Alcotest.(check bool) "thunk not forced" false !forced;
  let l = L.create ~n:2 () in
  S.with_ledger l (fun () ->
      S.observe (fun () ->
          forced := true;
          [ (0, S.Bad_share) ]));
  Alcotest.(check bool) "thunk forced under a ledger" true !forced;
  Alcotest.(check int) "accusation recorded" 1 (L.count l ~player:0 S.Bad_share)

let test_with_ledger_restores_on_exception () =
  let l = L.create ~n:2 () in
  (try
     S.with_ledger l (fun () -> raise Exit)
   with Exit -> ());
  Alcotest.(check bool) "ambient slot cleared after raise" true
    (S.current () = None);
  (* Nested installs shadow and restore. *)
  let outer = L.create ~n:2 () in
  let inner = L.create ~n:2 () in
  S.with_ledger outer (fun () ->
      S.with_ledger inner (fun () ->
          S.observe (fun () -> [ (1, S.Grade_zero) ]));
      S.observe (fun () -> [ (0, S.Silent) ]));
  Alcotest.(check int) "inner ledger got the inner accusation" 1
    (L.count inner ~player:1 S.Grade_zero);
  Alcotest.(check int) "outer ledger unaffected by inner scope" 0
    (L.count outer ~player:1 S.Grade_zero);
  Alcotest.(check int) "outer ledger got the outer accusation" 1
    (L.count outer ~player:0 S.Silent)

let test_excluded_and_mask () =
  Alcotest.(check bool) "no ledger: nobody excluded" false (S.excluded 0);
  Alcotest.(check bool) "no ledger: mask all clear" true
    (Array.for_all not (S.exclusion_mask ~n:5));
  let l = L.create ~config:(S.active ~threshold:3 ()) ~n:5 () in
  L.record l ~player:4 S.Bad_share;
  S.with_ledger l (fun () ->
      Alcotest.(check bool) "quarantined player excluded" true (S.excluded 4);
      Alcotest.(check bool) "honest player not excluded" false (S.excluded 0);
      let mask = S.exclusion_mask ~n:5 in
      Alcotest.(check bool) "mask matches excluded" true
        (Array.for_all Fun.id (Array.mapi (fun i m -> m = S.excluded i) mask)))

let suite =
  [
    Alcotest.test_case "scoring weights" `Quick test_scoring_weights;
    Alcotest.test_case "link slack forgives noise" `Quick
      test_link_slack_forgives_noise;
    Alcotest.test_case "quarantine threshold and stickiness" `Quick
      test_quarantine_threshold_and_stickiness;
    Alcotest.test_case "passive never quarantines" `Quick
      test_passive_never_quarantines;
    Alcotest.test_case "out-of-range ignored" `Quick test_out_of_range_ignored;
    Alcotest.test_case "dump/of_counts roundtrip" `Quick
      test_dump_of_counts_roundtrip;
    Alcotest.test_case "pp_table" `Quick test_pp_table;
    Alcotest.test_case "observe is lazy without a ledger" `Quick
      test_observe_is_lazy_without_ledger;
    Alcotest.test_case "with_ledger restores on exception" `Quick
      test_with_ledger_restores_on_exception;
    Alcotest.test_case "excluded and exclusion_mask" `Quick
      test_excluded_and_mask;
  ]
