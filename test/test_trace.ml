(* The trace collector (lib/trace): span nesting, metrics deltas,
   laziness when disabled, exception handling, the JSONL/timeline
   renderers, and the conformance oracle built on top of it. *)

module F = Gf2k.GF16
module V = Vss.Make (F)

let snapshot =
  Alcotest.testable
    (fun ppf s -> Fmt.pf ppf "%a" Metrics.pp s)
    (fun a b -> a = b)

(* --- collection --------------------------------------------------- *)

let test_disabled_by_default () =
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  (* event thunks are not forced without a collector *)
  Trace.event (fun () -> Alcotest.fail "thunk forced while disabled");
  Trace.note "also fine";
  Alcotest.(check int) "span is transparent" 42
    (Trace.span Trace.Phase "x" (fun () -> 42))

let test_span_nesting () =
  let (), trace =
    Trace.collect (fun () ->
        Trace.span Trace.Protocol "outer" (fun () ->
            Trace.note "hello";
            Trace.span Trace.Phase "inner" (fun () -> Metrics.tick_adds 2);
            Metrics.tick_adds 1))
  in
  match trace.Trace.items with
  | [ Trace.Span outer ] ->
      Alcotest.(check string) "outer name" "outer" outer.Trace.name;
      Alcotest.(check int) "outer sees both levels" 3
        outer.Trace.metrics.Metrics.field_adds;
      (match outer.Trace.items with
      | [ Trace.Event (_, Trace.Note "hello"); Trace.Span inner ] ->
          Alcotest.(check string) "inner name" "inner" inner.Trace.name;
          Alcotest.(check int) "inner delta" 2
            inner.Trace.metrics.Metrics.field_adds
      | _ -> Alcotest.fail "unexpected children of outer")
  | _ -> Alcotest.fail "expected exactly one top-level span"

let test_find_and_events () =
  let (), trace =
    Trace.collect (fun () ->
        Trace.span Trace.Protocol "p" (fun () ->
            Trace.event (fun () -> Trace.Send { src = 0; dst = 1; bytes = 4 });
            Trace.span Trace.Round "r" (fun () ->
                Trace.event (fun () ->
                    Trace.Recv { src = 0; dst = 1; bytes = 4 }))))
  in
  Alcotest.(check int) "two spans" 2 (List.length (Trace.spans trace));
  Alcotest.(check bool) "find r" true (Trace.find trace ~name:"r" <> None);
  Alcotest.(check bool) "find missing" true
    (Trace.find trace ~name:"nope" = None);
  (match Trace.find trace ~name:"p" with
  | Some p ->
      Alcotest.(check int) "direct events only" 1
        (List.length (Trace.events p))
  | None -> Alcotest.fail "span p not found");
  let seqs = List.map fst (Trace.all_events trace) in
  Alcotest.(check (list int)) "sequence order" [ 0; 1 ] seqs

let test_collector_does_not_perturb_metrics () =
  (* The bit-identical claim: a traced run draws the same randomness and
     ticks the same counters as an untraced one. *)
  let n = 7 and t = 2 in
  let run () =
    let g = Prng.of_int 99 in
    Metrics.with_counting (fun () ->
        let alpha = V.honest_dealing g ~n ~t ~secret:(F.random g) in
        let beta = V.honest_dealing g ~n ~t ~secret:(F.random g) in
        V.run ~n ~t ~alpha ~beta ~r:(F.random g) ())
  in
  ignore (run ());
  (* warm the grid caches *)
  let plain_verdict, plain = run () in
  let (traced_verdict, traced), _ = Trace.collect run in
  Alcotest.check snapshot "identical metrics" plain traced;
  Alcotest.(check bool) "identical verdict" true
    (plain_verdict = traced_verdict)

let test_try_collect_keeps_partial_trace () =
  let result, trace =
    Trace.try_collect (fun () ->
        Trace.span Trace.Protocol "doomed" (fun () ->
            Trace.note "before the crash";
            failwith "boom"))
  in
  (match result with
  | Error (Failure msg) when msg = "boom" -> ()
  | Error e -> Alcotest.fail ("wrong exception: " ^ Printexc.to_string e)
  | Ok () -> Alcotest.fail "expected the exception back");
  match Trace.find trace ~name:"doomed" with
  | None -> Alcotest.fail "aborted span lost"
  | Some s ->
      Alcotest.check snapshot "aborted span has zero metrics" Metrics.zero
        s.Trace.metrics;
      let notes =
        List.filter_map
          (function _, Trace.Note msg -> Some msg | _ -> None)
          (Trace.events s)
      in
      Alcotest.(check bool) "abort note recorded" true
        (List.exists
           (fun msg -> String.length msg >= 7 && String.sub msg 0 7 = "aborted")
           notes)

let test_protocol_spans_emitted () =
  let n = 7 and t = 2 in
  let g = Prng.of_int 3 in
  let alpha = V.honest_dealing g ~n ~t ~secret:(F.random g) in
  let beta = V.honest_dealing g ~n ~t ~secret:(F.random g) in
  let verdict, trace =
    Trace.collect (fun () -> V.run ~n ~t ~alpha ~beta ~r:(F.random g) ())
  in
  Alcotest.(check bool) "honest dealing accepted" true (verdict = V.Accept);
  List.iter
    (fun name ->
      Alcotest.(check bool) ("span " ^ name) true
        (Trace.find trace ~name <> None))
    [ "vss"; "vss.deal"; "vss.gamma"; "vss.verdict"; "bcast.round" ];
  (* one Verdict event per player, all accepting *)
  let verdicts =
    List.filter_map
      (function
        | _, Trace.Verdict { player; accept } -> Some (player, accept)
        | _ -> None)
      (Trace.all_events trace)
  in
  Alcotest.(check int) "n verdicts" n (List.length verdicts);
  Alcotest.(check bool) "all accept" true (List.for_all snd verdicts);
  (* the vss span's metrics match Lemma 2 exactly *)
  match Trace.find trace ~name:"vss" with
  | None -> Alcotest.fail "vss span missing"
  | Some s ->
      Alcotest.(check int) "2 rounds" 2 s.Trace.metrics.Metrics.rounds;
      Alcotest.(check int) "2n messages" (2 * n)
        s.Trace.metrics.Metrics.messages;
      Alcotest.(check int) "n interpolations" n
        s.Trace.metrics.Metrics.interpolations

(* --- rendering ---------------------------------------------------- *)

let vss_trace () =
  let n = 7 and t = 2 in
  let g = Prng.of_int 17 in
  let alpha = V.honest_dealing g ~n ~t ~secret:(F.random g) in
  let beta = V.honest_dealing g ~n ~t ~secret:(F.random g) in
  snd (Trace.collect (fun () -> V.run ~n ~t ~alpha ~beta ~r:(F.random g) ()))

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_jsonl_shape () =
  let trace = vss_trace () in
  let out = Fmt.str "%a" Trace.pp_jsonl trace in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
  in
  Alcotest.(check bool) "has lines" true (List.length lines > 10);
  List.iter
    (fun l ->
      Alcotest.(check bool) "line is an object" true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  Alcotest.(check bool) "has a span line" true
    (List.exists (contains ~needle:"\"type\":\"span\"") lines);
  Alcotest.(check bool) "has the vss span" true
    (List.exists (contains ~needle:"\"name\":\"vss\"") lines);
  Alcotest.(check bool) "has a verdict event" true
    (List.exists (contains ~needle:"\"event\":\"verdict\"") lines);
  Alcotest.(check bool) "metrics embedded" true
    (List.exists (contains ~needle:"\"interps\":") lines)

let test_json_string_escaping () =
  let (), trace =
    Trace.collect (fun () -> Trace.note "quote \" backslash \\ newline \n")
  in
  let out = Fmt.str "%a" Trace.pp_jsonl trace in
  Alcotest.(check bool) "escaped quote" true (contains ~needle:"\\\"" out);
  Alcotest.(check bool) "escaped backslash" true (contains ~needle:"\\\\" out);
  Alcotest.(check bool) "escaped newline" true (contains ~needle:"\\n" out)

let test_timeline_renders () =
  let out = Fmt.str "%a" Trace.pp_timeline (vss_trace ()) in
  Alcotest.(check bool) "mentions players x rounds" true
    (contains ~needle:"7 players x 2 rounds" out);
  Alcotest.(check bool) "player rows" true (contains ~needle:"p06" out);
  Alcotest.(check bool) "span intervals listed" true
    (contains ~needle:"vss.gamma" out);
  let empty = Fmt.str "%a" Trace.pp_timeline { Trace.backend = None; items = [] } in
  Alcotest.(check bool) "empty trace is graceful" true
    (contains ~needle:"no rounds" empty)

(* --- conformance -------------------------------------------------- *)

let test_conformance_suite_passes () =
  (* Small enough to be quick; the bench's --check-conformance covers
     the deployment sizes. *)
  List.iter
    (fun m ->
      let checks = Conformance.suite ~n:13 ~t:2 ~m in
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (Fmt.str "%a" Conformance.pp_check c)
            true (Conformance.passed c))
        checks)
    [ 1; 8 ]

let test_conformance_coin_gen_guard () =
  Alcotest.check_raises "needs n >= 6t+1"
    (Invalid_argument "Conformance.coin_gen_checks: requires n >= 6t+1")
    (fun () -> ignore (Conformance.coin_gen_checks ~n:13 ~t:3 ~m:1))

let test_conformance_detects_violation () =
  (* A doctored check must fail: the reporting path, not just the happy
     path. *)
  let checks = Conformance.vss_checks ~n:13 ~t:2 in
  let doctored =
    List.map
      (fun c ->
        if c.Conformance.quantity = "interpolations" then
          { c with Conformance.measured = c.Conformance.measured + 1 }
        else c)
      checks
  in
  Alcotest.(check bool) "original report passes" true
    (Conformance.report (Fmt.with_buffer (Buffer.create 256)) checks);
  Alcotest.(check bool) "doctored report fails" false
    (Conformance.report (Fmt.with_buffer (Buffer.create 256)) doctored)

let suite =
  [
    Alcotest.test_case "disabled by default" `Quick test_disabled_by_default;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "find and events" `Quick test_find_and_events;
    Alcotest.test_case "collector does not perturb metrics" `Quick
      test_collector_does_not_perturb_metrics;
    Alcotest.test_case "try_collect keeps partial trace" `Quick
      test_try_collect_keeps_partial_trace;
    Alcotest.test_case "protocol spans emitted" `Quick
      test_protocol_spans_emitted;
    Alcotest.test_case "jsonl shape" `Quick test_jsonl_shape;
    Alcotest.test_case "json string escaping" `Quick test_json_string_escaping;
    Alcotest.test_case "timeline renders" `Quick test_timeline_renders;
    Alcotest.test_case "conformance suite at n=13" `Slow
      test_conformance_suite_passes;
    Alcotest.test_case "conformance coin-gen guard" `Quick
      test_conformance_coin_gen_guard;
    Alcotest.test_case "conformance detects violation" `Quick
      test_conformance_detects_violation;
  ]
