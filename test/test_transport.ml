(* Cross-backend differential suite: the same (n, t, M, seed) campaigns
   must produce byte-identical transcripts — coin values, Metrics op
   counts, sentinel evidence, fault-plan stats — on the in-memory
   simulator, the domains backend, and the socket backend, under both
   clean and degraded Net.Plan schedules. The sim transcript is the
   oracle; any divergence is a transport bug by definition.

   Process-lifetime constraint: OCaml forbids [Unix.fork] once any
   domain has ever been spawned, so every socket test here is declared
   (and therefore runs) before the first domains test. Keep it that way
   when adding cases. DPRBG_TRANSPORT_BACKENDS ("sim,domains" etc.)
   restricts which byte-level backends run — CI uses it to keep socket
   in the nightly soak only. *)

module F = Gf2k.GF16
module SC = Sealed_coin.Make (F)
module CE = Coin_expose.Make (F)
module P = Pool.Make (F)

let backend_enabled b =
  match Sys.getenv_opt "DPRBG_TRANSPORT_BACKENDS" with
  | None -> true
  | Some s ->
      s |> String.split_on_char ','
      |> List.exists (fun x -> String.trim x = Transport.backend_name b)

(* ------------------------ transcripts ---------------------------- *)

let render_values buf label values =
  Buffer.add_string buf label;
  Buffer.add_char buf ':';
  Array.iter
    (function
      | None -> Buffer.add_string buf "-,"
      | Some v ->
          Buffer.add_string buf (F.to_string v);
          Buffer.add_char buf ',')
    values;
  Buffer.add_char buf '\n'

let render_evidence buf ledger =
  Buffer.add_string buf "evidence:";
  Array.iteri
    (fun player counts ->
      Buffer.add_string buf (string_of_int player);
      Buffer.add_char buf '[';
      Array.iter
        (fun c ->
          Buffer.add_string buf (string_of_int c);
          Buffer.add_char buf ' ')
        counts;
      Buffer.add_char buf ']')
    (Sentinel.Ledger.dump ledger);
  Buffer.add_char buf '\n'

let faulty_plan ~seed () =
  Transport.Plan.make ~drop:0.15 ~delay:0.1 ~max_delay:2 ~duplicate:0.05
    ~corrupt:0.05 ~reorder:0.2
    ~crashes:[ (1, 2, Some 4) ]
    ~retransmits:2 ~seed:((seed * 7) + 1) ()

(* M dealer coins sealed from one PRNG, each exposed to all players;
   the transcript is every player's decoded value for every coin, the
   sentinel evidence the exposures accrued, the plan's fault tally, and
   the exact metrics of the whole campaign. *)
let expose_campaign ~n ~t ~m ~seed ~faulty () =
  let buf = Buffer.create 512 in
  let body () =
    let g = Prng.of_int seed in
    let ledger = Sentinel.Ledger.create ~config:Sentinel.passive ~n () in
    Sentinel.with_ledger ledger (fun () ->
        let coins = List.init m (fun _ -> SC.dealer_coin g ~n ~t) in
        List.iteri
          (fun k coin -> render_values buf (Printf.sprintf "coin%d" k) (CE.run coin))
          coins);
    render_evidence buf ledger
  in
  let run () =
    if not faulty then body ()
    else begin
      let plan = faulty_plan ~seed () in
      Transport.with_plan plan body;
      Buffer.add_string buf
        (Fmt.str "plan:%a\n" Transport.Plan.pp_stats (Transport.Plan.stats plan))
    end
  in
  let (), metrics = Metrics.with_counting run in
  Buffer.add_string buf (Fmt.str "metrics:%a\n" Metrics.pp metrics);
  Buffer.contents buf

(* A pool campaign additionally drives Coin-Gen refills — VSS dealing,
   grade-cast, phase-king BA, the whole Fig. 5 pipeline — through the
   backend, so every protocol layer physically crosses it. n = 13 is
   the smallest Coin-Gen-legal size (n >= 6t + 1). *)
let pool_campaign ~draws ~seed ~faulty () =
  let buf = Buffer.create 512 in
  let body () =
    let pool =
      P.create ~prng:(Prng.of_int seed) ~n:13 ~t:2 ~batch_size:8
        ~refill_threshold:3 ~initial_seed:4 ()
    in
    (match
       List.init draws (fun _ -> P.draw_kary pool)
     with
    | values ->
        List.iteri
          (fun k v ->
            Buffer.add_string buf
              (Printf.sprintf "draw%d:%s\n" k (F.to_string v)))
          values
    | exception P.Starved why ->
        Buffer.add_string buf (Printf.sprintf "starved:%s\n" why));
    let s = P.stats pool in
    Buffer.add_string buf
      (Printf.sprintf
         "stats:refills=%d refreshes=%d dealer=%d generated=%d seeds=%d \
          exposed=%d ba=%d unanimity_failures=%d attempts=%d backoff=%d\n"
         s.refills s.refreshes s.dealer_coins s.generated_coins
         s.seed_coins_consumed s.coins_exposed s.ba_iterations
         s.unanimity_failures s.refill_attempts s.backoff_rounds)
  in
  let run () =
    if not faulty then body ()
    else begin
      let plan =
        Transport.Plan.make ~drop:0.05 ~delay:0.05 ~max_delay:2 ~reorder:0.1
          ~retransmits:2 ~seed:((seed * 13) + 5) ()
      in
      Transport.with_plan plan body;
      Buffer.add_string buf
        (Fmt.str "plan:%a\n" Transport.Plan.pp_stats (Transport.Plan.stats plan))
    end
  in
  let (), metrics = Metrics.with_counting run in
  Buffer.add_string buf (Fmt.str "metrics:%a\n" Metrics.pp metrics);
  Buffer.contents buf

(* ------------------------- the matrix ---------------------------- *)

let sizes = [ (7, 2); (16, 5) ]
let batches = [ 1; 16 ]
let seeds = [ 11; 12; 13 ]

let matrix f =
  List.iter
    (fun (n, t) ->
      List.iter
        (fun m ->
          List.iter
            (fun seed ->
              List.iter (fun faulty -> f ~n ~t ~m ~seed ~faulty)
                [ false; true ])
            seeds)
        batches)
    sizes

(* On mismatch, keep the evidence: both transcripts plus a JSONL trace
   of the campaign on each side, under transport-artifacts/ (uploaded
   by CI on failure). *)
let dump_artifacts ~name ~backend campaign oracle got =
  let dir = "transport-artifacts" in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let file suffix = Filename.concat dir (name ^ suffix) in
  let save path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  save (file ".sim.transcript") oracle;
  save (file "." ^ Transport.backend_name backend ^ ".transcript") got;
  let _, sim_trace = Trace.collect (fun () -> ignore (campaign ())) in
  Trace.write_jsonl (file ".sim.trace.jsonl") sim_trace;
  let _, backend_trace =
    Transport.with_backend backend (fun () ->
        Trace.collect (fun () -> ignore (campaign ())))
  in
  Trace.write_jsonl
    (file "." ^ Transport.backend_name backend ^ ".trace.jsonl")
    backend_trace

let check_differential ~name ~backend campaign =
  (* Warm-up outside the measured runs: the first field operations pay
     one-time lazy table construction, which must not skew whichever
     backend happens to run first. *)
  ignore (campaign ());
  let oracle = campaign () in
  let got = Transport.with_backend backend campaign in
  if not (String.equal oracle got) then
    dump_artifacts ~name ~backend campaign oracle got;
  Alcotest.(check string)
    (Printf.sprintf "%s: %s == sim" name (Transport.backend_name backend))
    oracle got

let differential_expose backend () =
  if not (backend_enabled backend) then
    print_endline
      ("[skip] " ^ Transport.backend_name backend
     ^ " disabled by DPRBG_TRANSPORT_BACKENDS")
  else
    matrix (fun ~n ~t ~m ~seed ~faulty ->
        let name =
          Printf.sprintf "expose-n%d-t%d-m%d-s%d%s" n t m seed
            (if faulty then "-faulty" else "")
        in
        check_differential ~name ~backend (expose_campaign ~n ~t ~m ~seed ~faulty))

let differential_pool backend () =
  if not (backend_enabled backend) then
    print_endline
      ("[skip] " ^ Transport.backend_name backend
     ^ " disabled by DPRBG_TRANSPORT_BACKENDS")
  else
    List.iter
      (fun faulty ->
        let name =
          Printf.sprintf "pool-n13-t2%s" (if faulty then "-faulty" else "")
        in
        let campaign = pool_campaign ~draws:5 ~seed:61 ~faulty in
        (* The campaign only pins what it exercises: make sure Coin-Gen
           actually refilled (VSS + grade-cast + BA all crossed the
           backend) rather than starving or coasting on the seed. *)
        let contains hay needle =
          let h = String.length hay and n = String.length needle in
          let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
          go 0
        in
        let transcript = campaign () in
        Alcotest.(check bool)
          (name ^ " drives a refill")
          true
          (contains transcript "refills=1" && not (contains transcript "starved"));
        check_differential ~name ~backend campaign)
      [ false; true ]

(* ----------------------- pinning and tags ------------------------ *)

(* The sim backend is the identity: running under [with_backend Sim]
   must be bit-identical to running with no transport session at all. *)
let test_sim_pinned () =
  let campaign = expose_campaign ~n:7 ~t:2 ~m:4 ~seed:5 ~faulty:true in
  ignore (campaign ());
  let bare = campaign () in
  let sim = Transport.with_backend Transport.Sim campaign in
  Alcotest.(check string) "with_backend Sim == bare Net" bare sim

let test_default_backend () =
  Alcotest.(check string) "default backend" "sim"
    (Transport.backend_name (Transport.current_backend ()))

(* Traces finished inside a transport session carry the backend tag and
   emit it as a leading meta line in JSONL. *)
let test_trace_backend_tag () =
  let _, bare = Trace.collect (fun () -> Trace.note "x") in
  Alcotest.(check bool) "no tag outside session" true (bare.Trace.backend = None);
  let _, tagged =
    Transport.with_backend Transport.Sim (fun () ->
        Trace.collect (fun () -> Trace.note "x"))
  in
  Alcotest.(check bool) "sim tag" true (tagged.Trace.backend = Some "sim");
  let jsonl = Fmt.str "%a" Trace.pp_jsonl tagged in
  let prefix = {|{"type":"meta","backend":"sim"}|} in
  Alcotest.(check bool) "meta line" true
    (String.length jsonl >= String.length prefix
    && String.sub jsonl 0 (String.length prefix) = prefix)

let test_domains_tag () =
  if not (backend_enabled Transport.Domains) then print_endline "[skip]"
  else begin
    let _, tagged =
      Transport.with_backend Transport.Domains (fun () ->
          Trace.collect (fun () ->
              ignore (expose_campaign ~n:7 ~t:2 ~m:1 ~seed:3 ~faulty:false ())))
    in
    Alcotest.(check bool) "domains tag" true
      (tagged.Trace.backend = Some "domains")
  end

(* Same campaign, same backend, repeated: the worker interleaving must
   never show through. *)
let test_domains_deterministic () =
  if not (backend_enabled Transport.Domains) then print_endline "[skip]"
  else begin
    let campaign = expose_campaign ~n:7 ~t:2 ~m:8 ~seed:99 ~faulty:true in
    ignore (campaign ());
    let first = Transport.with_backend Transport.Domains campaign in
    for _ = 1 to 2 do
      let again = Transport.with_backend Transport.Domains campaign in
      Alcotest.(check string) "repeat run identical" first again
    done
  end

let suite =
  [
    Alcotest.test_case "default backend is sim" `Quick test_default_backend;
    Alcotest.test_case "sim backend pinned to bare Net" `Quick test_sim_pinned;
    Alcotest.test_case "trace backend tag" `Quick test_trace_backend_tag;
    (* Socket before domains: fork is forbidden once a domain exists. *)
    Alcotest.test_case "differential: expose matrix (socket)" `Slow
      (differential_expose Transport.Socket);
    Alcotest.test_case "differential: pool pipeline (socket)" `Slow
      (differential_pool Transport.Socket);
    Alcotest.test_case "differential: expose matrix (domains)" `Slow
      (differential_expose Transport.Domains);
    Alcotest.test_case "differential: pool pipeline (domains)" `Slow
      (differential_pool Transport.Domains);
    Alcotest.test_case "domains runs are deterministic" `Slow
      test_domains_deterministic;
    Alcotest.test_case "trace tag under domains" `Quick test_domains_tag;
  ]
