module F = Gf2k.GF32
module C = Wire.Codec (F)

let test_int_roundtrips () =
  let w = Wire.Writer.create () in
  Wire.Writer.u8 w 0xAB;
  Wire.Writer.u16 w 0xBEEF;
  Wire.Writer.u32 w 0xDEADBEEF;
  let r = Wire.Reader.of_bytes (Wire.Writer.contents w) in
  Alcotest.(check int) "u8" 0xAB (Wire.Reader.u8 r);
  Alcotest.(check int) "u16" 0xBEEF (Wire.Reader.u16 r);
  Alcotest.(check int) "u32" 0xDEADBEEF (Wire.Reader.u32 r);
  Wire.Reader.expect_end r

let test_writer_range_checks () =
  let w = Wire.Writer.create () in
  Alcotest.check_raises "u8" (Invalid_argument "Wire.Writer.u8: out of range")
    (fun () -> Wire.Writer.u8 w 256);
  Alcotest.check_raises "u16" (Invalid_argument "Wire.Writer.u16: out of range")
    (fun () -> Wire.Writer.u16 w (-1))

let test_reader_truncation () =
  let r = Wire.Reader.of_bytes (Bytes.of_string "x") in
  Alcotest.check_raises "u16 short" (Invalid_argument "Wire.Reader: truncated input")
    (fun () -> ignore (Wire.Reader.u16 r))

let test_trailing_rejected () =
  let r = Wire.Reader.of_bytes (Bytes.of_string "xy") in
  ignore (Wire.Reader.u8 r);
  Alcotest.check_raises "trailing" (Invalid_argument "Wire.Reader: trailing bytes")
    (fun () -> Wire.Reader.expect_end r)

let prop_elt_roundtrip =
  QCheck.Test.make ~count:300 ~name:"element roundtrip" QCheck.int (fun seed ->
      let x = F.random (Prng.of_int seed) in
      F.equal x (C.decode_elt (C.encode_elt x)))

let prop_elt_array_roundtrip =
  QCheck.Test.make ~count:200 ~name:"element array roundtrip"
    QCheck.(pair int (int_range 0 40))
    (fun (seed, n) ->
      let g = Prng.of_int seed in
      let a = Array.init n (fun _ -> F.random g) in
      let w = Wire.Writer.create () in
      C.write_elt_array w a;
      Alcotest.(check int) "size" (C.elt_array_size n) (Wire.Writer.size w);
      let r = Wire.Reader.of_bytes (Wire.Writer.contents w) in
      let b = C.read_elt_array r in
      Wire.Reader.expect_end r;
      Array.length a = Array.length b && Array.for_all2 F.equal a b)

let prop_opt_elt_array_roundtrip =
  QCheck.Test.make ~count:200 ~name:"optional element array roundtrip"
    QCheck.(pair int (int_range 0 40))
    (fun (seed, n) ->
      let g = Prng.of_int seed in
      let a =
        Array.init n (fun _ -> if Prng.bool g then Some (F.random g) else None)
      in
      let w = Wire.Writer.create () in
      C.write_opt_elt_array w a;
      Alcotest.(check int) "size" (C.opt_elt_array_size a) (Wire.Writer.size w);
      let r = Wire.Reader.of_bytes (Wire.Writer.contents w) in
      let b = C.read_opt_elt_array r in
      Wire.Reader.expect_end r;
      a = b
      || Array.for_all2
           (fun x y ->
             match (x, y) with
             | None, None -> true
             | Some u, Some v -> F.equal u v
             | _ -> false)
           a b)

let test_codec_composes () =
  (* Two arrays back-to-back decode cleanly: self-delimiting framing. *)
  let g = Prng.of_int 7 in
  let a = Array.init 5 (fun _ -> F.random g) in
  let b = Array.init 3 (fun _ -> if Prng.bool g then Some (F.random g) else None) in
  let w = Wire.Writer.create () in
  C.write_elt_array w a;
  C.write_opt_elt_array w b;
  let r = Wire.Reader.of_bytes (Wire.Writer.contents w) in
  let a' = C.read_elt_array r in
  let b' = C.read_opt_elt_array r in
  Wire.Reader.expect_end r;
  Alcotest.(check bool) "first" true (Array.for_all2 F.equal a a');
  Alcotest.(check int) "second length" 3 (Array.length b')

let test_non_canonical_rejected () =
  (* A GF(2^20) element with bits above k must be refused. *)
  let module F20 = Gf2k.Make (struct let k = 20 end) in
  let bad = Bytes.make 3 '\xFF' in
  Alcotest.check_raises "non-canonical"
    (Invalid_argument "GF(2^20).of_bytes: non-canonical value") (fun () ->
      ignore (F20.of_bytes bad))

(* ------------------ transport frames (Frame) --------------------- *)

let frame_kinds = [ Frame.Msg; Frame.Round; Frame.End_of_round; Frame.Stop ]

let prop_frame_roundtrip =
  QCheck.Test.make ~count:300 ~name:"frame roundtrip"
    QCheck.(quad (int_range 0 3) (pair (int_range 0 0xFFFF) (int_range 0 0xFFFF))
        (int_range 0 0xFFFFFFFF) (string_of_size (QCheck.Gen.int_range 0 512)))
    (fun (k, (src, dst), uid, payload) ->
      let kind = List.nth frame_kinds k in
      let payload = Bytes.of_string payload in
      let frame = Frame.encode kind ~src ~dst ~uid ~payload in
      let hdr, payload' = Frame.decode frame in
      hdr.Frame.kind = kind && hdr.Frame.src = src && hdr.Frame.dst = dst
      && hdr.Frame.uid = uid
      && hdr.Frame.length = Bytes.length payload
      && Bytes.equal payload payload')

(* Hostile input must surface as the typed Frame.Error — never an
   out-of-bounds access, a giant allocation, or a silent success. *)
let prop_frame_garbage_is_typed =
  QCheck.Test.make ~count:500 ~name:"garbage frames raise typed errors"
    QCheck.(string_of_size (QCheck.Gen.int_range 0 64))
    (fun s ->
      match Frame.decode (Bytes.of_string s) with
      | _ -> true (* vanishingly unlikely, but legal *)
      | exception Frame.Error _ -> true
      | exception _ -> false)

let frame_error exp f =
  match f () with
  | _ -> Alcotest.fail "expected Frame.Error"
  | exception Frame.Error e ->
      Alcotest.(check string) "error" exp (Fmt.str "%a" Frame.pp_error e)

let test_frame_adversarial () =
  let good = Frame.encode Frame.Msg ~src:3 ~dst:4 ~uid:77 ~payload:(Bytes.of_string "hi") in
  (* Truncations at every prefix length must be typed, never a crash. *)
  for len = 0 to Bytes.length good - 1 do
    match Frame.decode (Bytes.sub good 0 len) with
    | _ -> Alcotest.fail "truncated frame decoded"
    | exception Frame.Error (Frame.Truncated _) -> ()
    | exception e -> Alcotest.fail ("truncation raised " ^ Printexc.to_string e)
  done;
  frame_error "3 trailing bytes after frame" (fun () ->
      Frame.decode (Bytes.cat good (Bytes.of_string "xyz")));
  let mangle pos v =
    let b = Bytes.copy good in
    Bytes.set_uint8 b pos v;
    b
  in
  frame_error "bad frame magic 0xD900" (fun () -> Frame.decode (mangle 0 0x00));
  frame_error "unsupported frame version 9" (fun () ->
      Frame.decode (mangle 2 9));
  frame_error "unknown frame kind 200" (fun () -> Frame.decode (mangle 3 200));
  (* An announced length beyond the cap is refused before allocation. *)
  let oversized = Bytes.copy good in
  Bytes.set_uint16_le oversized 12 0xFFFF;
  Bytes.set_uint16_le oversized 14 0xFFFF;
  frame_error
    (Printf.sprintf "oversized frame payload: %d bytes (limit %d)" 0xFFFFFFFF
       Frame.max_payload)
    (fun () -> Frame.decode oversized);
  (* Encoder refuses out-of-range fields. *)
  Alcotest.check_raises "src range"
    (Invalid_argument "Frame.encode: src 70000 out of u16 range") (fun () ->
      ignore (Frame.encode Frame.Msg ~src:70000 ~dst:0 ~uid:0 ~payload:Bytes.empty))

let test_payload_size_formula () =
  Alcotest.(check int) "empty" 4 (C.payload_size ~clique:[] ~poly_sizes:[]);
  Alcotest.(check int) "typical"
    (4 + (2 * 3) + (3 * (4 + (2 * F.byte_size))))
    (C.payload_size ~clique:[ 1; 2; 3 ] ~poly_sizes:[ 2; 2; 2 ])

let suite =
  [
    Alcotest.test_case "int roundtrips" `Quick test_int_roundtrips;
    Alcotest.test_case "writer range checks" `Quick test_writer_range_checks;
    Alcotest.test_case "reader truncation" `Quick test_reader_truncation;
    Alcotest.test_case "trailing rejected" `Quick test_trailing_rejected;
    Alcotest.test_case "codec composes" `Quick test_codec_composes;
    Alcotest.test_case "non-canonical rejected" `Quick test_non_canonical_rejected;
    Alcotest.test_case "payload size formula" `Quick test_payload_size_formula;
    Alcotest.test_case "frame adversarial inputs" `Quick test_frame_adversarial;
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [
        prop_elt_roundtrip;
        prop_elt_array_roundtrip;
        prop_opt_elt_array_roundtrip;
        prop_frame_roundtrip;
        prop_frame_garbage_is_typed;
      ]
